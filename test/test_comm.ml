(* Tests for the communication substrates: NVSHMEM PGAS model, host-side MPI,
   peer-to-peer stores, and the overlap metrics. *)

module E = Cpufree_engine
module G = Cpufree_gpu
module Nv = Cpufree_comm.Nvshmem
module Mpi = Cpufree_comm.Mpi
module P2p = Cpufree_comm.P2p
module Collective = Cpufree_comm.Collective
module Metrics = Cpufree_comm.Metrics
module Time = E.Time
module Engine = E.Engine

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_float msg = check (Alcotest.float 1e-9) msg

let with_machine ?(gpus = 2) f =
  let eng = Engine.create () in
  let ctx = G.Runtime.create eng ~num_gpus:gpus () in
  let (_ : Engine.process) = Engine.spawn eng ~name:"main" (fun () -> f eng ctx) in
  Engine.run eng;
  (eng, ctx)

(* --- NVSHMEM ------------------------------------------------------------ *)

let nvshmem_tests =
  [
    Alcotest.test_case "symmetric allocation has one buffer per PE" `Quick (fun () ->
        let _ =
          with_machine ~gpus:4 (fun _ ctx ->
              let nv = Nv.init ctx in
              check_int "pes" 4 (Nv.n_pes nv);
              let s = Nv.sym_malloc nv ~label:"x" 8 in
              for pe = 0 to 3 do
                let b = Nv.local s ~pe in
                check_int "len" 8 (G.Buffer.length b);
                check_int "device" pe (G.Buffer.device b)
              done)
        in
        ());
    Alcotest.test_case "putmem delivers data after quiet" `Quick (fun () ->
        let _ =
          with_machine (fun _ ctx ->
              let nv = Nv.init ctx in
              let s = Nv.sym_malloc nv ~label:"x" 4 in
              G.Buffer.init (Nv.local s ~pe:0) float_of_int;
              Nv.putmem_nbi nv ~from_pe:0 ~to_pe:1 ~src:(Nv.local s ~pe:0) ~src_pos:1 ~dst:s
                ~dst_pos:0 ~len:2;
              Nv.quiet nv ~pe:0;
              check_float "moved" 1.0 (G.Buffer.get (Nv.local s ~pe:1) 0);
              check_float "moved2" 2.0 (G.Buffer.get (Nv.local s ~pe:1) 1))
        in
        ());
    Alcotest.test_case "putmem_signal raises the flag only after the data" `Quick (fun () ->
        let _ =
          with_machine (fun _ ctx ->
              let nv = Nv.init ctx in
              let s = Nv.sym_malloc nv ~label:"x" 4 in
              let f = Nv.signal_malloc nv ~label:"f" () in
              G.Buffer.fill (Nv.local s ~pe:0) 7.0;
              Nv.putmem_signal_nbi nv ~from_pe:0 ~to_pe:1 ~src:(Nv.local s ~pe:0) ~src_pos:0
                ~dst:s ~dst_pos:0 ~len:4 ~sig_var:f ~sig_op:Nv.Signal_set ~sig_value:3;
              check_int "not yet" 0 (Nv.signal_read f ~pe:1);
              Nv.signal_wait_ge nv ~pe:1 ~sig_var:f 3;
              (* Signal delivery implies data delivery. *)
              check_float "data present" 7.0 (G.Buffer.get (Nv.local s ~pe:1) 3))
        in
        ());
    Alcotest.test_case "iput performs a strided scatter" `Quick (fun () ->
        let _ =
          with_machine (fun _ ctx ->
              let nv = Nv.init ctx in
              let s = Nv.sym_malloc nv ~label:"x" 9 in
              G.Buffer.init (Nv.local s ~pe:0) float_of_int;
              (* Column 0 of a 3x3 grid into column 2 at the destination. *)
              Nv.iput_nbi nv ~from_pe:0 ~to_pe:1 ~src:(Nv.local s ~pe:0) ~src_pos:0
                ~src_stride:3 ~dst:s ~dst_pos:2 ~dst_stride:3 ~count:3;
              Nv.quiet nv ~pe:0;
              let d = Nv.local s ~pe:1 in
              check_float "r0" 0.0 (G.Buffer.get d 2);
              check_float "r1" 3.0 (G.Buffer.get d 5);
              check_float "r2" 6.0 (G.Buffer.get d 8))
        in
        ());
    Alcotest.test_case "p writes a single element synchronously" `Quick (fun () ->
        let _ =
          with_machine (fun _ ctx ->
              let nv = Nv.init ctx in
              let s = Nv.sym_malloc nv ~label:"x" 2 in
              Nv.p nv ~from_pe:0 ~to_pe:1 ~value:9.5 ~dst:s ~dst_pos:1;
              check_float "written" 9.5 (G.Buffer.get (Nv.local s ~pe:1) 1))
        in
        ());
    Alcotest.test_case "signal_op orders after outstanding puts" `Quick (fun () ->
        let _ =
          with_machine (fun _ ctx ->
              let nv = Nv.init ctx in
              let s = Nv.sym_malloc nv ~label:"x" 1024 in
              let f = Nv.signal_malloc nv ~label:"f" () in
              G.Buffer.fill (Nv.local s ~pe:0) 2.0;
              Nv.putmem_nbi nv ~from_pe:0 ~to_pe:1 ~src:(Nv.local s ~pe:0) ~src_pos:0 ~dst:s
                ~dst_pos:0 ~len:1024;
              Nv.signal_op_remote nv ~from_pe:0 ~to_pe:1 ~sig_var:f ~sig_op:Nv.Signal_add
                ~sig_value:1;
              (* signal_op fences: by the time it lands, the put landed. *)
              check_float "fenced" 2.0 (G.Buffer.get (Nv.local s ~pe:1) 1023);
              check_int "sig" 1 (Nv.signal_read f ~pe:1))
        in
        ());
    Alcotest.test_case "pending tracks outstanding deliveries" `Quick (fun () ->
        let _ =
          with_machine (fun _ ctx ->
              let nv = Nv.init ctx in
              let s = Nv.sym_malloc nv ~label:"x" 1024 in
              Nv.putmem_nbi nv ~from_pe:0 ~to_pe:1 ~src:(Nv.local s ~pe:0) ~src_pos:0 ~dst:s
                ~dst_pos:0 ~len:1024;
              check_int "one pending" 1 (Nv.pending nv ~pe:0);
              Nv.quiet nv ~pe:0;
              check_int "drained" 0 (Nv.pending nv ~pe:0))
        in
        ());
    Alcotest.test_case "barrier_all joins every PE" `Quick (fun () ->
        let released = ref [] in
        let eng = Engine.create () in
        let ctx = G.Runtime.create eng ~num_gpus:3 () in
        let nv = Nv.init ctx in
        for pe = 0 to 2 do
          let (_ : Engine.process) =
            Engine.spawn eng ~name:"pe" (fun () ->
                Engine.delay eng (Time.ns (pe * 100));
                Nv.barrier_all nv ~pe;
                released := Time.to_ns (Engine.now eng) :: !released)
          in
          ()
        done;
        Engine.run eng;
        (match !released with
        | [ a; b; c ] ->
          check_int "same" a b;
          check_int "same2" b c
        | _ -> Alcotest.fail "expected 3 releases"));
    Alcotest.test_case "invalid PE rejected" `Quick (fun () ->
        let _ =
          with_machine (fun _ ctx ->
              let nv = Nv.init ctx in
              Alcotest.check_raises "bad pe" (Invalid_argument "Nvshmem.quiet: no such PE 7")
                (fun () -> Nv.quiet nv ~pe:7))
        in
        ());
    Alcotest.test_case "signal wait with a custom predicate" `Quick (fun () ->
        let _ =
          with_machine (fun eng ctx ->
              let nv = Nv.init ctx in
              let f = Nv.signal_malloc nv ~label:"f" () in
              let (_ : Engine.process) =
                Engine.spawn eng ~name:"setter" (fun () ->
                    Engine.delay eng (Time.ns 10);
                    Nv.signal_op_remote nv ~from_pe:1 ~to_pe:0 ~sig_var:f ~sig_op:Nv.Signal_set
                      ~sig_value:42)
              in
              Nv.signal_wait_until nv ~pe:0 ~sig_var:f (fun v -> v = 42))
        in
        ());
  ]

(* --- MPI ---------------------------------------------------------------- *)

let mpi_tests =
  [
    Alcotest.test_case "send-then-recv matches" `Quick (fun () ->
        let _ =
          with_machine (fun _ ctx ->
              let mpi = Mpi.init ctx in
              let a = G.Buffer.create ~device:0 ~label:"a" 4 in
              let b = G.Buffer.create ~device:1 ~label:"b" 4 in
              G.Buffer.init a float_of_int;
              let s = Mpi.isend mpi ~rank:0 ~dst:1 ~tag:5 (Mpi.contiguous a ~pos:0 ~len:4) in
              let r = Mpi.irecv mpi ~rank:1 ~src:0 ~tag:5 (Mpi.contiguous b ~pos:0 ~len:4) in
              Mpi.waitall mpi [ s; r ];
              check_float "data" 3.0 (G.Buffer.get b 3);
              check_int "matched" 1 (Mpi.messages_matched mpi))
        in
        ());
    Alcotest.test_case "recv posted first also matches" `Quick (fun () ->
        let _ =
          with_machine (fun _ ctx ->
              let mpi = Mpi.init ctx in
              let a = G.Buffer.create ~device:0 ~label:"a" 2 in
              let b = G.Buffer.create ~device:1 ~label:"b" 2 in
              G.Buffer.fill a 5.0;
              let r = Mpi.irecv mpi ~rank:1 ~src:0 ~tag:1 (Mpi.contiguous b ~pos:0 ~len:2) in
              let s = Mpi.isend mpi ~rank:0 ~dst:1 ~tag:1 (Mpi.contiguous a ~pos:0 ~len:2) in
              Mpi.waitall mpi [ s; r ];
              check_float "data" 5.0 (G.Buffer.get b 1))
        in
        ());
    Alcotest.test_case "different tags do not match" `Quick (fun () ->
        let _ =
          with_machine (fun _ ctx ->
              let mpi = Mpi.init ctx in
              let a = G.Buffer.create ~device:0 ~label:"a" 1 in
              let b = G.Buffer.create ~device:1 ~label:"b" 1 in
              let (_ : Mpi.request) =
                Mpi.isend mpi ~rank:0 ~dst:1 ~tag:1 (Mpi.contiguous a ~pos:0 ~len:1)
              in
              let r = Mpi.irecv mpi ~rank:1 ~src:0 ~tag:2 (Mpi.contiguous b ~pos:0 ~len:1) in
              check_bool "unmatched" false (Mpi.test r);
              check_int "none matched" 0 (Mpi.messages_matched mpi))
        in
        ());
    Alcotest.test_case "type_vector sends a strided column" `Quick (fun () ->
        let _ =
          with_machine (fun _ ctx ->
              let mpi = Mpi.init ctx in
              (* 3x3 grids: column 2 of rank 0 into column 0 of rank 1 *)
              let a = G.Buffer.create ~device:0 ~label:"a" 9 in
              let b = G.Buffer.create ~device:1 ~label:"b" 9 in
              G.Buffer.init a float_of_int;
              let s =
                Mpi.isend mpi ~rank:0 ~dst:1 ~tag:0 (Mpi.type_vector a ~pos:2 ~stride:3 ~count:3)
              in
              let r =
                Mpi.irecv mpi ~rank:1 ~src:0 ~tag:0 (Mpi.type_vector b ~pos:0 ~stride:3 ~count:3)
              in
              Mpi.waitall mpi [ s; r ];
              check_float "c0" 2.0 (G.Buffer.get b 0);
              check_float "c1" 5.0 (G.Buffer.get b 3);
              check_float "c2" 8.0 (G.Buffer.get b 6))
        in
        ());
    Alcotest.test_case "wait blocks until the transfer lands" `Quick (fun () ->
        let eng, _ =
          with_machine (fun eng ctx ->
              let mpi = Mpi.init ctx in
              let a = G.Buffer.create ~device:0 ~label:"a" 1 in
              let b = G.Buffer.create ~device:1 ~label:"b" 1 in
              let (_ : Engine.process) =
                Engine.spawn eng ~name:"sender" (fun () ->
                    Engine.delay eng (Time.us 50);
                    let s =
                      Mpi.isend mpi ~rank:0 ~dst:1 ~tag:0 (Mpi.contiguous a ~pos:0 ~len:1)
                    in
                    Mpi.wait mpi s)
              in
              let r = Mpi.irecv mpi ~rank:1 ~src:0 ~tag:0 (Mpi.contiguous b ~pos:0 ~len:1) in
              Mpi.wait mpi r;
              check_bool "after sender" true Time.(Engine.now eng >= Time.us 50))
        in
        ignore eng);
    Alcotest.test_case "mpi barrier joins ranks" `Quick (fun () ->
        let _ =
          with_machine ~gpus:2 (fun _ ctx ->
              let mpi = Mpi.init ctx in
              G.Host.parallel_join ctx ~name:"b" (fun rank -> Mpi.barrier mpi ~rank))
        in
        ());
    Alcotest.test_case "rank bounds checked" `Quick (fun () ->
        let _ =
          with_machine (fun _ ctx ->
              let mpi = Mpi.init ctx in
              let a = G.Buffer.create ~device:0 ~label:"a" 1 in
              Alcotest.check_raises "bad" (Invalid_argument "Mpi.isend: no such rank 9")
                (fun () ->
                  ignore (Mpi.isend mpi ~rank:0 ~dst:9 ~tag:0 (Mpi.contiguous a ~pos:0 ~len:1))))
        in
        ());
  ]

let host_path_tests =
  [
    Alcotest.test_case "host-device transfers ride PCIe" `Quick (fun () ->
        let eng = Engine.create () in
        let net = G.Interconnect.create eng ~arch:G.Arch.a100_hgx ~num_gpus:2 in
        (* 25 kB at 25 B/ns = 1000 ns serialization over PCIe, far slower
           than the same payload over NVLink. *)
        let pcie =
          G.Interconnect.transfer_time net ~src:G.Interconnect.Host
            ~dst:(G.Interconnect.Gpu 0) ~initiator:G.Interconnect.By_host ~bytes:25_000
        in
        let nvlink =
          G.Interconnect.transfer_time net ~src:(G.Interconnect.Gpu 1)
            ~dst:(G.Interconnect.Gpu 0) ~initiator:G.Interconnect.By_host ~bytes:25_000
        in
        check_bool "slower" true Time.(nvlink < pcie));
    Alcotest.test_case "strided MPI messages stage through the host" `Quick (fun () ->
        let time_of region_of =
          let eng = Engine.create () in
          let ctx = G.Runtime.create eng ~num_gpus:2 () in
          let mpi = Mpi.init ctx in
          let a = G.Buffer.create ~device:0 ~label:"a" 4096 in
          let b = G.Buffer.create ~device:1 ~label:"b" 4096 in
          let (_ : Engine.process) =
            Engine.spawn eng ~name:"main" (fun () ->
                let s = Mpi.isend mpi ~rank:0 ~dst:1 ~tag:0 (region_of a) in
                let r = Mpi.irecv mpi ~rank:1 ~src:0 ~tag:0 (region_of b) in
                Mpi.waitall mpi [ s; r ])
          in
          Engine.run eng;
          Engine.now eng
        in
        let contiguous = time_of (fun buf -> Mpi.contiguous buf ~pos:0 ~len:512) in
        let strided = time_of (fun buf -> Mpi.type_vector buf ~pos:0 ~stride:8 ~count:512) in
        check_bool "staging is much slower" true
          (Time.to_sec_float strided > 3.0 *. Time.to_sec_float contiguous));
  ]

(* --- P2P ---------------------------------------------------------------- *)

let p2p_tests =
  [
    Alcotest.test_case "copy moves data and takes time" `Quick (fun () ->
        let eng, _ =
          with_machine (fun _ ctx ->
              let a = G.Buffer.create ~device:0 ~label:"a" 4 in
              let b = G.Buffer.create ~device:1 ~label:"b" 4 in
              G.Buffer.init a float_of_int;
              P2p.copy ctx ~from_dev:0 ~src:a ~src_pos:0 ~dst:b ~dst_pos:0 ~len:4)
        in
        check_bool "time passed" true Time.(Engine.now eng > Time.zero));
    Alcotest.test_case "single store" `Quick (fun () ->
        let _ =
          with_machine (fun _ ctx ->
              let b = G.Buffer.create ~device:1 ~label:"b" 2 in
              P2p.store ctx ~from_dev:0 ~dst:b ~dst_pos:1 4.5;
              check_float "stored" 4.5 (G.Buffer.get b 1))
        in
        ());
  ]

(* --- Metrics ------------------------------------------------------------ *)

let iv a b = (Time.ns a, Time.ns b)

let metrics_tests =
  [
    Alcotest.test_case "merge unions overlapping intervals" `Quick (fun () ->
        let merged = Metrics.merge [ iv 0 10; iv 5 15; iv 20 30 ] in
        check_int "count" 2 (List.length merged);
        check_int "total" 25 (Time.to_ns (Metrics.total merged)));
    Alcotest.test_case "merge drops empty intervals" `Quick (fun () ->
        check_int "empty" 0 (List.length (Metrics.merge [ iv 5 5 ])));
    Alcotest.test_case "intersect computes overlap" `Quick (fun () ->
        let x = Metrics.merge [ iv 0 10 ] and y = Metrics.merge [ iv 5 20 ] in
        check_int "overlap" 5 (Time.to_ns (Metrics.total (Metrics.intersect x y))));
    Alcotest.test_case "intersect of disjoint is empty" `Quick (fun () ->
        let x = Metrics.merge [ iv 0 5 ] and y = Metrics.merge [ iv 6 9 ] in
        check_int "none" 0 (List.length (Metrics.intersect x y)));
    Alcotest.test_case "overlap ratio from a synthetic trace" `Quick (fun () ->
        let t = E.Trace.create () in
        E.Trace.add t ~lane:"g0" ~label:"k" ~kind:E.Trace.Compute ~t0:(Time.ns 0)
          ~t1:(Time.ns 100);
        E.Trace.add t ~lane:"g0.comm" ~label:"x" ~kind:E.Trace.Communication ~t0:(Time.ns 50)
          ~t1:(Time.ns 150);
        (* 100 ns of comm, 50 of it under compute. *)
        check_float "ratio" 0.5 (Metrics.overlap_ratio t);
        check_int "comm" 100 (Time.to_ns (Metrics.comm_time t));
        check_int "compute" 100 (Time.to_ns (Metrics.compute_time t)));
    Alcotest.test_case "overlap ratio is zero without communication" `Quick (fun () ->
        let t = E.Trace.create () in
        E.Trace.add t ~lane:"g0" ~label:"k" ~kind:E.Trace.Compute ~t0:(Time.ns 0)
          ~t1:(Time.ns 10);
        check_float "zero" 0.0 (Metrics.overlap_ratio t));
    Alcotest.test_case "comm fraction" `Quick (fun () ->
        let t = E.Trace.create () in
        E.Trace.add t ~lane:"g0.comm" ~label:"x" ~kind:E.Trace.Communication ~t0:(Time.ns 0)
          ~t1:(Time.ns 25);
        check_float "quarter" 0.25 (Metrics.comm_fraction t ~total:(Time.ns 100)));
  ]

(* --- Collective ---------------------------------------------------------- *)

let run_on_all_pes ~gpus f =
  let eng = Engine.create () in
  let ctx = G.Runtime.create eng ~num_gpus:gpus () in
  let nv = Nv.init ctx in
  let coll = Collective.create nv ~label:"c" in
  for pe = 0 to gpus - 1 do
    let (_ : Engine.process) = Engine.spawn eng ~name:(Printf.sprintf "pe%d" pe) (fun () -> f coll pe) in
    ()
  done;
  Engine.run eng

let collective_tests =
  [
    Alcotest.test_case "allreduce_sum sums every PE's contribution" `Quick (fun () ->
        let results = Array.make 4 nan in
        run_on_all_pes ~gpus:4 (fun coll pe ->
            results.(pe) <- Collective.allreduce_sum coll ~pe (float_of_int (pe + 1)));
        Array.iter (fun v -> check_float "sum" 10.0 v) results);
    Alcotest.test_case "allreduce_max" `Quick (fun () ->
        let results = Array.make 3 nan in
        run_on_all_pes ~gpus:3 (fun coll pe ->
            results.(pe) <- Collective.allreduce_max coll ~pe (float_of_int (10 - pe)));
        Array.iter (fun v -> check_float "max" 10.0 v) results);
    Alcotest.test_case "rounds are reusable without interference" `Quick (fun () ->
        let seen = Array.make 2 [] in
        run_on_all_pes ~gpus:2 (fun coll pe ->
            for round = 1 to 5 do
              let s = Collective.allreduce_sum coll ~pe (float_of_int (round * (pe + 1))) in
              seen.(pe) <- s :: seen.(pe)
            done;
            check_int "round count" 5 (Collective.rounds coll ~pe));
        (* Round r contributes r*1 + r*2 = 3r. *)
        Array.iter
          (fun l ->
            check (Alcotest.list (Alcotest.float 1e-9)) "per-round sums"
              [ 3.0; 6.0; 9.0; 12.0; 15.0 ] (List.rev l))
          seen);
    Alcotest.test_case "skewed arrival still agrees" `Quick (fun () ->
        let eng = Engine.create () in
        let ctx = G.Runtime.create eng ~num_gpus:3 () in
        let nv = Nv.init ctx in
        let coll = Collective.create nv ~label:"c" in
        let results = Array.make 3 nan in
        for pe = 0 to 2 do
          let (_ : Engine.process) =
            Engine.spawn eng ~name:"pe" (fun () ->
                Engine.delay eng (Time.us (pe * 40));
                results.(pe) <- Collective.allreduce_sum coll ~pe 1.0)
          in
          ()
        done;
        Engine.run eng;
        Array.iter (fun v -> check_float "sum" 3.0 v) results);
    Alcotest.test_case "single PE degenerates to identity" `Quick (fun () ->
        run_on_all_pes ~gpus:1 (fun coll pe ->
            check_float "self" 7.5 (Collective.allreduce_sum coll ~pe 7.5)));
  ]

(* Every schedule is a position-preserving allgather followed by the same
   in-order local reduce, so each must reproduce the dense result bit for
   bit — including the non-power-of-two counts that exercise the tree
   remainder handling and the doubling pre/post folds. *)
let algo_run ~algorithm ~gpus =
  let eng = Engine.create () in
  let ctx = G.Runtime.create eng ~num_gpus:gpus () in
  let nv = Nv.init ctx in
  let coll = Collective.create ~algorithm nv ~label:"c" in
  let results = Array.make gpus nan in
  for pe = 0 to gpus - 1 do
    let (_ : Engine.process) =
      Engine.spawn eng ~name:(Printf.sprintf "pe%d" pe) (fun () ->
          let s = Collective.allreduce_sum coll ~pe (float_of_int ((pe * 3) + 1)) in
          let m = Collective.allreduce_max coll ~pe (float_of_int (pe * 7 mod 5)) in
          results.(pe) <- s +. (1000.0 *. m))
    in
    ()
  done;
  Engine.run eng;
  results

let algorithm_tests =
  [
    Alcotest.test_case "every algorithm matches dense bit for bit" `Quick (fun () ->
        List.iter
          (fun gpus ->
            let dense = algo_run ~algorithm:Collective.Dense ~gpus in
            List.iter
              (fun algorithm ->
                if algo_run ~algorithm ~gpus <> dense then
                  Alcotest.failf "%s differs from dense at %d PEs"
                    (Collective.algorithm_to_string algorithm)
                    gpus)
              [ Collective.Ring; Collective.Tree; Collective.Doubling ])
          [ 1; 2; 3; 5; 6; 8; 13 ]);
    Alcotest.test_case "algorithm names round-trip" `Quick (fun () ->
        List.iter
          (fun a ->
            match Collective.algorithm_of_string (Collective.algorithm_to_string a) with
            | Ok b when b = a -> ()
            | _ -> Alcotest.failf "%s does not round-trip" (Collective.algorithm_to_string a))
          [ Collective.Dense; Collective.Ring; Collective.Tree; Collective.Doubling ];
        check_bool "junk rejected" true
          (match Collective.algorithm_of_string "butterfly" with Error _ -> true | Ok _ -> false));
    Alcotest.test_case "halo exchange delivers both edges per stage" `Quick (fun () ->
        let gpus = 5 and w = 3 in
        let eng = Engine.create () in
        let ctx = G.Runtime.create eng ~num_gpus:gpus () in
        let nv = Nv.init ctx in
        let h = Collective.halo_create nv ~label:"h" ~width:w in
        let failures = ref [] in
        for pe = 0 to gpus - 1 do
          let (_ : Engine.process) =
            Engine.spawn eng ~name:(Printf.sprintf "h%d" pe) (fun () ->
                for stage = 1 to 4 do
                  let edge base =
                    Array.init w (fun i -> float_of_int ((stage * 100) + (base * 10) + i))
                  in
                  let l, r = Collective.halo_exchange h ~pe ~left:(edge pe) ~right:(edge (pe + 100)) in
                  (match l with
                  | Some g ->
                    if g <> edge (pe - 1 + 100) then
                      failures := Printf.sprintf "pe %d stage %d left ghost" pe stage :: !failures
                  | None -> if pe <> 0 then failures := "missing left ghost" :: !failures);
                  (match r with
                  | Some g ->
                    if g <> edge (pe + 1) then
                      failures := Printf.sprintf "pe %d stage %d right ghost" pe stage :: !failures
                  | None -> if pe <> gpus - 1 then failures := "missing right ghost" :: !failures)
                done;
                check_int "stage count" 4 (Collective.halo_stages h ~pe))
          in
          ()
        done;
        Engine.run eng;
        (match !failures with [] -> () | f :: _ -> Alcotest.failf "halo mismatch: %s" f));
    Alcotest.test_case "host baselines reduce to the same sums" `Quick (fun () ->
        List.iter
          (fun (algorithm, gpus) ->
            let eng = Engine.create () in
            let ctx = G.Runtime.create eng ~num_gpus:gpus () in
            let out = ref [||] in
            let (_ : Engine.process) =
              Engine.spawn eng ~name:"host" (fun () ->
                  out :=
                    Collective.host_allreduce_sum ctx ~algorithm ~label:"hb"
                      (Array.init gpus (fun g -> float_of_int (g + 1))))
            in
            Engine.run eng;
            let expected = float_of_int (gpus * (gpus + 1) / 2) in
            Array.iteri
              (fun g v ->
                if v <> expected then
                  Alcotest.failf "host %s at %d PEs: gpu %d got %f, want %f"
                    (Collective.algorithm_to_string algorithm)
                    gpus g v expected)
              !out;
            check_bool "host run takes simulated time" true Time.(Engine.now eng > zero))
          [
            (Collective.Dense, 4);
            (Collective.Ring, 5);
            (Collective.Tree, 5);
            (Collective.Tree, 8);
            (Collective.Doubling, 5);
            (Collective.Doubling, 8);
          ]);
    Alcotest.test_case "host halo pipeline runs its stages" `Quick (fun () ->
        let eng = Engine.create () in
        let ctx = G.Runtime.create eng ~num_gpus:4 () in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"hh" (fun () ->
              Collective.host_halo_run ctx ~label:"hh" ~width:8 ~stages:3)
        in
        Engine.run eng;
        check_bool "host halo takes simulated time" true Time.(Engine.now eng > zero));
  ]

(* --- Fail-stop shrink and revocation ------------------------------------- *)

module Fault = Cpufree_fault.Fault
module Env = Cpufree_obs.Sim_env

let kill_spec ~pe ~at_us = { Fault.none with Fault.kills = [ (pe, Time.us at_us) ] }

let recovery_tests =
  [
    Alcotest.test_case "group shrinks around a quiesced kill and completes" `Quick (fun () ->
        let gpus = 4 in
        let env = Env.make ~faults:(kill_spec ~pe:2 ~at_us:200) ~fault_seed:1 () in
        let eng = Engine.create () in
        let ctx = G.Runtime.create eng ~env ~num_gpus:gpus () in
        let nv = Nv.init ctx in
        let coll = Collective.create nv ~label:"c" in
        let first = Array.make gpus nan and second = Array.make gpus nan in
        for pe = 0 to gpus - 1 do
          let (_ : Engine.process) =
            Engine.spawn eng ~name:(Printf.sprintf "pe%d" pe) (fun () ->
                first.(pe) <- Collective.allreduce_sum coll ~pe (float_of_int (pe + 1));
                (* Everyone pauses past PE 2's scheduled death, so the next
                   round starts with the corpse fully quiesced. *)
                Engine.delay eng (Time.us 300);
                second.(pe) <- Collective.allreduce_sum coll ~pe (float_of_int (pe + 1)))
          in
          ()
        done;
        Engine.run eng;
        (* Round 1, everyone alive: 1+2+3+4. *)
        Array.iter (fun v -> check_float "healthy round" 10.0 v) first;
        (* Round 2 stalls on the corpse; survivors diagnose the kill,
           shrink to {0,1,3} and redo: 1+2+4. *)
        List.iter (fun pe -> check_float "survivor round" 7.0 second.(pe)) [ 0; 1; 3 ];
        check_bool "degraded" true (Collective.degraded coll);
        check (Alcotest.array Alcotest.int) "membership" [| 0; 1; 3 |]
          (Collective.members coll ~pe:0);
        check (Alcotest.array Alcotest.int) "agreement" (Collective.members coll ~pe:0)
          (Collective.members coll ~pe:3));
    Alcotest.test_case "shrunk group keeps reducing over survivors" `Quick (fun () ->
        let gpus = 3 in
        let env = Env.make ~faults:(kill_spec ~pe:0 ~at_us:100) ~fault_seed:1 () in
        let eng = Engine.create () in
        let ctx = G.Runtime.create eng ~env ~num_gpus:gpus () in
        let nv = Nv.init ctx in
        let coll = Collective.create nv ~label:"c" in
        let sums = Array.make gpus [] in
        for pe = 0 to gpus - 1 do
          let (_ : Engine.process) =
            Engine.spawn eng ~name:(Printf.sprintf "pe%d" pe) (fun () ->
                Engine.delay eng (Time.us 150);
                for round = 1 to 3 do
                  let s = Collective.allreduce_sum coll ~pe (float_of_int (round * (pe + 1))) in
                  sums.(pe) <- s :: sums.(pe)
                done)
          in
          ()
        done;
        Engine.run eng;
        (* PE 0 is dead before any round: survivors {1,2} shrink on round 1
           and every later round reduces over them alone — round r gives
           r*2 + r*3. *)
        List.iter
          (fun pe ->
            check (Alcotest.list (Alcotest.float 1e-9)) "survivor series"
              [ 5.0; 10.0; 15.0 ] (List.rev sums.(pe)))
          [ 1; 2 ]);
    Alcotest.test_case "revoke drains blocked participants" `Quick (fun () ->
        let gpus = 3 in
        let eng = Engine.create () in
        let ctx = G.Runtime.create eng ~num_gpus:gpus () in
        let nv = Nv.init ctx in
        let coll = Collective.create nv ~label:"c" in
        let drained = Array.make gpus false in
        for pe = 0 to gpus - 2 do
          let (_ : Engine.process) =
            Engine.spawn eng ~name:(Printf.sprintf "pe%d" pe) (fun () ->
                match Collective.allreduce_sum coll ~pe 1.0 with
                | (_ : float) -> Alcotest.fail "collective completed without PE 2"
                | exception Collective.Revoked ->
                  Nv.quiet nv ~pe;
                  drained.(pe) <- true)
          in
          ()
        done;
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"revoker" (fun () ->
              (* Let the others block inside the dense gather first. *)
              Engine.delay eng (Time.us 50);
              Collective.revoke coll;
              (* A call after revocation is refused outright. *)
              (match Collective.allreduce_sum coll ~pe:(gpus - 1) 1.0 with
              | (_ : float) -> Alcotest.fail "revoked communicator accepted a call"
              | exception Collective.Revoked -> ());
              drained.(gpus - 1) <- true)
        in
        (* The engine drains — no Deadlock — and every PE got the poison. *)
        Engine.run eng;
        Array.iteri (fun pe b -> check_bool (Printf.sprintf "pe%d drained" pe) true b) drained);
    Alcotest.test_case "fault-free groups never shrink" `Quick (fun () ->
        let results = Array.make 4 nan in
        run_on_all_pes ~gpus:4 (fun coll pe ->
            results.(pe) <- Collective.allreduce_sum coll ~pe 1.0;
            check_bool "not degraded" false (Collective.degraded coll);
            check_int "full membership" 4 (Array.length (Collective.members coll ~pe)));
        Array.iter (fun v -> check_float "sum" 4.0 v) results);
  ]

(* --- Fabric: lazy pair tables -------------------------------------------- *)

let fabric_tests =
  [
    Alcotest.test_case "pair memo fills per pair used, not eagerly" `Quick (fun () ->
        let eng = Engine.create () in
        let net = G.Interconnect.create eng ~arch:G.Arch.a100_hgx ~num_gpus:8 in
        check_int "nothing routed at creation" 0 (G.Interconnect.pairs_resolved net);
        ignore (G.Interconnect.lookahead net : Time.t);
        ignore (G.Interconnect.min_gpu_wire_latency net : Time.t);
        ignore (G.Interconnect.max_gpu_wire_latency net : Time.t);
        check_int "bounds come from the topology, not the memo" 0
          (G.Interconnect.pairs_resolved net);
        let t01 =
          G.Interconnect.transfer_time net ~src:(G.Interconnect.Gpu 0)
            ~dst:(G.Interconnect.Gpu 1) ~initiator:G.Interconnect.By_device ~bytes:4096
        in
        check_int "one transfer routes one pair" 1 (G.Interconnect.pairs_resolved net);
        let again =
          G.Interconnect.transfer_time net ~src:(G.Interconnect.Gpu 0)
            ~dst:(G.Interconnect.Gpu 1) ~initiator:G.Interconnect.By_device ~bytes:4096
        in
        check_bool "repeat hits the memo" true (Time.equal t01 again);
        check_int "still one pair" 1 (G.Interconnect.pairs_resolved net);
        ignore
          (G.Interconnect.wire_latency net ~src:(G.Interconnect.Gpu 2) ~dst:G.Interconnect.Host
            : Time.t);
        check_int "distinct pair adds one entry" 2 (G.Interconnect.pairs_resolved net));
  ]

let comm_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"merge is idempotent" ~count:100
         QCheck.(list (pair (int_bound 500) (int_bound 500)))
         (fun pairs ->
           let ivs = List.map (fun (a, d) -> (Time.ns a, Time.ns (a + d))) pairs in
           let once = Metrics.merge ivs in
           Metrics.merge once = once));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"intersection is bounded by each operand" ~count:100
         QCheck.(pair (list (pair (int_bound 300) (int_bound 99)))
                   (list (pair (int_bound 300) (int_bound 99))))
         (fun (xs, ys) ->
           let mk = List.map (fun (a, d) -> (Time.ns a, Time.ns (a + d + 1))) in
           let x = Metrics.merge (mk xs) and y = Metrics.merge (mk ys) in
           let inter = Metrics.total (Metrics.intersect x y) in
           Time.(inter <= Metrics.total x) && Time.(inter <= Metrics.total y)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"allreduce_sum equals the arithmetic sum" ~count:30
         QCheck.(pair (int_range 1 6) (list_of_size Gen.(return 6) (float_bound_exclusive 100.0)))
         (fun (gpus, values) ->
           let values = Array.of_list values in
           let results = Array.make gpus nan in
           run_on_all_pes ~gpus (fun coll pe ->
               results.(pe) <- Collective.allreduce_sum coll ~pe values.(pe));
           let expected = ref 0.0 in
           for pe = 0 to gpus - 1 do
             expected := !expected +. values.(pe)
           done;
           Array.for_all (fun v -> Float.abs (v -. !expected) < 1e-9) results));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"transfer time is monotone in size" ~count:100
         QCheck.(pair (int_range 0 1_000_000) (int_range 0 1_000_000))
         (fun (a, b) ->
           let eng = Engine.create () in
           let net = G.Interconnect.create eng ~arch:G.Arch.a100_hgx ~num_gpus:2 in
           let t bytes =
             G.Interconnect.transfer_time net ~src:(G.Interconnect.Gpu 0)
               ~dst:(G.Interconnect.Gpu 1) ~initiator:G.Interconnect.By_device ~bytes
           in
           let lo = min a b and hi = max a b in
           Time.(t lo <= t hi)));
  ]

let () =
  Alcotest.run "comm"
    [
      ("nvshmem", nvshmem_tests);
      ("mpi", mpi_tests);
      ("host-path", host_path_tests);
      ("p2p", p2p_tests);
      ("metrics", metrics_tests);
      ("collective", collective_tests @ algorithm_tests @ comm_props);
      ("recovery", recovery_tests);
      ("fabric", fabric_tests);
    ]
