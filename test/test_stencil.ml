(* Tests for the stencil application library: problem geometry, compute
   kernels, slab decomposition, all six execution variants (verified against
   the sequential reference across GPU counts and dimensionalities), and the
   scaling harness. *)

module E = Cpufree_engine
module G = Cpufree_gpu
module S = Cpufree_stencil
module Problem = S.Problem
module Compute = S.Compute
module Slab = S.Slab
module Variants = S.Variants
module Harness = S.Harness
module Measure = Cpufree_core.Measure
module Time = E.Time

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_float msg = check (Alcotest.float 1e-9) msg

let d2 nx ny = Problem.D2 { nx; ny }
let d3 nx ny nz = Problem.D3 { nx; ny; nz }

(* --- Problem ------------------------------------------------------------ *)

let problem_tests =
  [
    Alcotest.test_case "plane geometry 2D" `Quick (fun () ->
        let p = Problem.make (d2 16 8) ~iterations:1 in
        check_int "plane" 16 (Problem.plane_elems p);
        check_int "planes" 8 (Problem.planes_global p);
        check_int "total" 128 (Problem.total_elems p));
    Alcotest.test_case "plane geometry 3D" `Quick (fun () ->
        let p = Problem.make (d3 4 5 6) ~iterations:1 in
        check_int "plane" 20 (Problem.plane_elems p);
        check_int "planes" 6 (Problem.planes_global p));
    Alcotest.test_case "non-positive dims rejected" `Quick (fun () ->
        Alcotest.check_raises "bad" (Invalid_argument "Problem.make: non-positive dimension")
          (fun () -> ignore (Problem.make (d2 0 4) ~iterations:1)));
    Alcotest.test_case "negative iterations rejected" `Quick (fun () ->
        Alcotest.check_raises "bad" (Invalid_argument "Problem.make: negative iteration count")
          (fun () -> ignore (Problem.make (d2 4 4) ~iterations:(-1))));
    Alcotest.test_case "weak scaling alternates axes in 2D" `Quick (fun () ->
        check Alcotest.string "x1" "256x256"
          (Problem.dims_to_string (Problem.weak_scale (d2 256 256) ~gpus:1));
        check Alcotest.string "x2" "512x256"
          (Problem.dims_to_string (Problem.weak_scale (d2 256 256) ~gpus:2));
        check Alcotest.string "x4" "512x512"
          (Problem.dims_to_string (Problem.weak_scale (d2 256 256) ~gpus:4));
        check Alcotest.string "x8" "1024x512"
          (Problem.dims_to_string (Problem.weak_scale (d2 256 256) ~gpus:8)));
    Alcotest.test_case "weak scaling alternates axes in 3D" `Quick (fun () ->
        check Alcotest.string "x8" "128x128x128"
          (Problem.dims_to_string (Problem.weak_scale (d3 64 64 64) ~gpus:8)));
    Alcotest.test_case "weak scaling keeps per-GPU volume constant" `Quick (fun () ->
        let base = Problem.make (d2 256 256) ~iterations:1 in
        List.iter
          (fun g ->
            let p = { base with Problem.dims = Problem.weak_scale base.Problem.dims ~gpus:g } in
            check_int "volume" (Problem.total_elems base) (Problem.total_elems p / g))
          [ 1; 2; 4; 8; 16 ]);
    Alcotest.test_case "weak scaling requires a power of two" `Quick (fun () ->
        Alcotest.check_raises "bad"
          (Invalid_argument "Problem.weak_scale: gpus must be a power of two") (fun () ->
            ignore (Problem.weak_scale (d2 4 4) ~gpus:3)));
    Alcotest.test_case "init_value is deterministic" `Quick (fun () ->
        check_float "same" (Problem.init_value 1234) (Problem.init_value 1234));
  ]

(* --- Compute ------------------------------------------------------------ *)

let mk_buf label n f =
  let b = G.Buffer.create ~device:G.Buffer.host_device ~label n in
  G.Buffer.init b f;
  b

let compute_tests =
  [
    Alcotest.test_case "2D update of one interior point" `Quick (fun () ->
        (* 3 columns x (1 plane + 2 halos): interior cell gets the average of
           its 4 neighbours; edge columns copy through. *)
        let src = mk_buf "s" 9 float_of_int in
        let dst = mk_buf "d" 9 (fun _ -> 0.0) in
        Compute.apply (Problem.D2 { nx = 3; ny = 1 }) ~src ~dst ~p0:1 ~p1:1;
        check_float "interior" (0.25 *. (1.0 +. 7.0 +. 3.0 +. 5.0)) (G.Buffer.get dst 4);
        check_float "left edge copied" 3.0 (G.Buffer.get dst 3);
        check_float "right edge copied" 5.0 (G.Buffer.get dst 5);
        check_float "halo untouched" 0.0 (G.Buffer.get dst 0));
    Alcotest.test_case "3D update averages six neighbours" `Quick (fun () ->
        (* 3x3 planes, 3 planes of storage: only the very centre is interior. *)
        let src = mk_buf "s" 27 float_of_int in
        let dst = mk_buf "d" 27 (fun _ -> 0.0) in
        Compute.apply (Problem.D3 { nx = 3; ny = 3; nz = 1 }) ~src ~dst ~p0:1 ~p1:1;
        let expected = (4.0 +. 22.0 +. 10.0 +. 16.0 +. 12.0 +. 14.0) /. 6.0 in
        check_float "centre" expected (G.Buffer.get dst 13);
        (* y-edge rows copy through *)
        check_float "y edge" 10.0 (G.Buffer.get dst 10));
    Alcotest.test_case "phantom buffers short-circuit" `Quick (fun () ->
        let src = G.Buffer.create ~phantom:true ~device:0 ~label:"s" 9 in
        let dst = G.Buffer.create ~device:0 ~label:"d" 9 in
        Compute.apply (Problem.D2 { nx = 3; ny = 1 }) ~src ~dst ~p0:1 ~p1:1;
        check_float "untouched" 0.0 (G.Buffer.get dst 4));
    Alcotest.test_case "reference preserves the fixed shell" `Quick (fun () ->
        let p = Problem.make ~backed:true (d2 6 4) ~iterations:3 in
        let r = Compute.reference p in
        check_int "size" (Compute.global_storage_size p) (Array.length r);
        (* Fixed top shell cell keeps its initial value. *)
        check_float "shell" (Problem.init_value 2) r.(2));
    Alcotest.test_case "reference converges toward smoothness" `Quick (fun () ->
        (* Jacobi averaging must shrink the discrete range of the interior. *)
        let p0 = Problem.make ~backed:true (d2 8 8) ~iterations:0 in
        let p50 = { p0 with Problem.iterations = 50 } in
        let range arr =
          let lo = ref infinity and hi = ref neg_infinity in
          let wd = 8 in
          for r = 1 to 8 do
            for c = 1 to 6 do
              let v = arr.((r * wd) + c) in
              if v < !lo then lo := v;
              if v > !hi then hi := v
            done
          done;
          !hi -. !lo
        in
        check_bool "smoother" true (range (Compute.reference p50) < range (Compute.reference p0)));
  ]

(* --- Slab --------------------------------------------------------------- *)

let slab_tests =
  [
    Alcotest.test_case "balanced decomposition with remainder" `Quick (fun () ->
        let p = Problem.make (d2 4 13) ~iterations:1 in
        let slabs = List.init 4 (fun pe -> Slab.make p ~n_pes:4 ~pe) in
        check (Alcotest.list Alcotest.int) "planes" [ 4; 3; 3; 3 ]
          (List.map (fun s -> s.Slab.planes) slabs);
        check (Alcotest.list Alcotest.int) "starts" [ 0; 4; 7; 10 ]
          (List.map (fun s -> s.Slab.global_start) slabs));
    Alcotest.test_case "offsets" `Quick (fun () ->
        let p = Problem.make (d2 8 16) ~iterations:1 in
        let s = Slab.make p ~n_pes:4 ~pe:1 in
        check_int "storage" (6 * 8) (Slab.storage_elems s);
        check_int "top halo" 0 (Slab.top_halo_off s);
        check_int "top own" 8 (Slab.top_own_off s);
        check_int "bottom own" 32 (Slab.bottom_own_off s);
        check_int "bottom halo" 40 (Slab.bottom_halo_off s));
    Alcotest.test_case "boundary and inner planes" `Quick (fun () ->
        let p = Problem.make (d2 8 16) ~iterations:1 in
        let s = Slab.make p ~n_pes:4 ~pe:0 in
        check (Alcotest.list Alcotest.int) "boundary" [ 1; 4 ] (Slab.boundary_planes s);
        check_bool "inner" true (Slab.inner_planes s = Some (2, 3));
        check_int "inner elems" 16 (Slab.inner_elems s));
    Alcotest.test_case "single-plane slab" `Quick (fun () ->
        let p = Problem.make (d2 8 4) ~iterations:1 in
        let s = Slab.make p ~n_pes:4 ~pe:2 in
        check (Alcotest.list Alcotest.int) "boundary" [ 1 ] (Slab.boundary_planes s);
        check_bool "no inner" true (Slab.inner_planes s = None));
    Alcotest.test_case "more PEs than planes rejected" `Quick (fun () ->
        let p = Problem.make (d2 8 2) ~iterations:1 in
        Alcotest.check_raises "bad" (Invalid_argument "Slab.make: fewer planes than PEs")
          (fun () -> ignore (Slab.make p ~n_pes:4 ~pe:0)));
    Alcotest.test_case "init matches the global initializer" `Quick (fun () ->
        let p = Problem.make ~backed:true (d2 4 8) ~iterations:1 in
        let s = Slab.make p ~n_pes:2 ~pe:1 in
        let b = G.Buffer.create ~device:1 ~label:"b" (Slab.storage_elems s) in
        Slab.init_buffer s b;
        (* Local element 0 is global plane 4 (pe 1's halo), index 16. *)
        check_float "first" (Problem.init_value 16) (G.Buffer.get b 0);
        check_float "mid" (Problem.init_value 21) (G.Buffer.get b 5));
    Alcotest.test_case "extract_owned returns interior offset" `Quick (fun () ->
        let p = Problem.make ~backed:true (d2 4 8) ~iterations:1 in
        let s = Slab.make p ~n_pes:2 ~pe:1 in
        let b = G.Buffer.create ~device:1 ~label:"b" (Slab.storage_elems s) in
        Slab.init_buffer s b;
        match Slab.extract_owned s b with
        | None -> Alcotest.fail "no data"
        | Some (off, values) ->
          check_int "offset" 16 off;
          check_int "len" 16 (Array.length values);
          check_float "first owned" (Problem.init_value 20) values.(0));
  ]

(* --- Variants: verification matrix --------------------------------------- *)

let verify_case kind dims gpus iterations =
  let name =
    Printf.sprintf "%s %s gpus=%d iters=%d" (Variants.name kind)
      (Problem.dims_to_string dims) gpus iterations
  in
  Alcotest.test_case name `Quick (fun () ->
      let problem = Problem.make ~backed:true dims ~iterations in
      match Harness.verify_env kind problem ~gpus with
      | Ok err -> check_bool "small error" true (err <= Harness.tolerance)
      | Error m -> Alcotest.fail m)

let verification_tests =
  List.concat_map
    (fun kind ->
      [
        verify_case kind (d2 24 24) 1 4;
        verify_case kind (d2 24 24) 2 4;
        verify_case kind (d2 24 24) 4 5;
        verify_case kind (d2 24 24) 8 3;
        verify_case kind (d3 8 8 16) 4 3;
        verify_case kind (d3 6 6 24) 8 2;
      ])
    Variants.all
  @ (* Uneven plane split exercises remainder handling (baselines only need
       one plane per PE; cpu-free needs two). *)
  List.concat_map
    (fun kind -> [ verify_case kind (d2 16 13) 4 3 ])
    [ Variants.Copy; Variants.Overlap; Variants.P2p; Variants.Nvshmem ]
  @ [ verify_case Variants.Cpu_free (d2 16 13) 4 3 ]

let variant_misc_tests =
  [
    Alcotest.test_case "names round-trip" `Quick (fun () ->
        List.iter
          (fun k -> check_bool "found" true (Variants.of_name (Variants.name k) = Some k))
          Variants.extended;
        check_bool "unknown" true (Variants.of_name "nope" = None));
    Alcotest.test_case "two-kernel cpu-free matches the reference" `Quick (fun () ->
        let problem = Problem.make ~backed:true (d2 24 24) ~iterations:4 in
        match Harness.verify_env Variants.Cpu_free_multi problem ~gpus:4 with
        | Ok err -> check_bool "small error" true (err <= Harness.tolerance)
        | Error m -> Alcotest.fail m);
    Alcotest.test_case "two-kernel cpu-free matches in 3D too" `Quick (fun () ->
        let problem = Problem.make ~backed:true (d3 6 6 16) ~iterations:3 in
        match Harness.verify_env Variants.Cpu_free_multi problem ~gpus:4 with
        | Ok err -> check_bool "small error" true (err <= Harness.tolerance)
        | Error m -> Alcotest.fail m);
    Alcotest.test_case "two-kernel design performs close to single-kernel (the paper's claim)"
      `Quick (fun () ->
        (* Section 4: "We did not observe any significant performance
           improvement or degradation from this design". *)
        let problem = Problem.make (d2 2048 2048) ~iterations:20 in
        let single = Harness.run_env Variants.Cpu_free problem ~gpus:8 in
        let multi = Harness.run_env Variants.Cpu_free_multi problem ~gpus:8 in
        let ratio =
          Time.to_sec_float multi.Measure.total /. Time.to_sec_float single.Measure.total
        in
        check_bool "within 25%" true (ratio > 0.75 && ratio < 1.25));
    Alcotest.test_case "zero iterations leaves the initial state" `Quick (fun () ->
        let problem = Problem.make ~backed:true (d2 8 8) ~iterations:0 in
        match Harness.verify_env Variants.Cpu_free problem ~gpus:2 with
        | Ok err -> check_float "exact" 0.0 err
        | Error m -> Alcotest.fail m);
    Alcotest.test_case "cpu-free needs two planes per PE" `Quick (fun () ->
        let problem = Problem.make (d2 8 4) ~iterations:1 in
        let built = Variants.build Variants.Cpu_free problem ~gpus:4 in
        match
          Measure.run_env ~label:"x" ~gpus:4 ~iterations:1 built.Variants.program
        with
        | (_ : Measure.result) -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    Alcotest.test_case "no-compute mode still communicates (every variant)" `Quick (fun () ->
        let problem = Problem.make ~compute:false (d2 64 64) ~iterations:5 in
        List.iter
          (fun kind ->
            let r = Harness.run_env kind problem ~gpus:4 in
            check_bool (Variants.name kind ^ " comm") true Time.(r.Measure.comm > Time.zero);
            check_bool (Variants.name kind ^ " bytes") true (r.Measure.bytes_moved > 0))
          Variants.extended);
    Alcotest.test_case "cpu-free weak scaling stays near-flat" `Quick (fun () ->
        let base = Problem.make (d2 256 256) ~iterations:20 in
        let pts = Harness.weak_scaling Variants.Cpu_free ~base ~gpu_counts:[ 1; 2; 4; 8 ] in
        List.iter
          (fun (g, eff) ->
            check_bool (Printf.sprintf "efficiency at %d" g) true (eff > 0.8))
          (Harness.weak_efficiency pts));
    Alcotest.test_case "phantom mode moves no data but same simulated time" `Quick (fun () ->
        let run backed =
          Harness.run_env Variants.Nvshmem
            (Problem.make ~backed (d2 32 32) ~iterations:4)
            ~gpus:4
        in
        let a = run true and b = run false in
        check_int "identical timing" (Time.to_ns a.Measure.total) (Time.to_ns b.Measure.total));
  ]

(* Property: on random small domains the CPU-Free result equals the
   CPU-controlled Copy baseline result bit for bit (they implement the same
   numerical method). *)
let variant_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"cpu-free matches reference on random domains" ~count:20
         QCheck.(triple (int_range 4 20) (int_range 8 24) (int_range 0 6))
         (fun (nx, ny, iterations) ->
           let problem = Problem.make ~backed:true (Problem.D2 { nx; ny }) ~iterations in
           match Harness.verify_env Variants.Cpu_free problem ~gpus:4 with
           | Ok _ -> true
           | Error _ -> false));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"nvshmem baseline matches reference on random 3D domains"
         ~count:12
         QCheck.(triple (int_range 3 8) (int_range 8 16) (int_range 1 4))
         (fun (nx, nz, iterations) ->
           let problem =
             Problem.make ~backed:true (Problem.D3 { nx; ny = nx; nz }) ~iterations
           in
           match Harness.verify_env Variants.Nvshmem problem ~gpus:2 with
           | Ok _ -> true
           | Error _ -> false));
  ]

(* --- Harness / scaling ---------------------------------------------------- *)

let scaling_tests =
  [
    Alcotest.test_case "weak scaling produces one point per count" `Quick (fun () ->
        let base = Problem.make (d2 64 64) ~iterations:3 in
        let pts = Harness.weak_scaling Variants.Nvshmem ~base ~gpu_counts:[ 1; 2; 4 ] in
        check_int "points" 3 (List.length pts);
        check (Alcotest.list Alcotest.int) "counts" [ 1; 2; 4 ]
          (List.map (fun p -> p.Harness.gpus) pts));
    Alcotest.test_case "weak efficiency starts at 1" `Quick (fun () ->
        let base = Problem.make (d2 64 64) ~iterations:3 in
        let pts = Harness.weak_scaling Variants.Cpu_free ~base ~gpu_counts:[ 1; 2 ] in
        match Harness.weak_efficiency pts with
        | (1, e) :: _ -> check_float "unity" 1.0 e
        | _ -> Alcotest.fail "missing first point");
    Alcotest.test_case "strong scaling keeps the domain fixed" `Quick (fun () ->
        let problem = Problem.make (d2 64 64) ~iterations:3 in
        let pts = Harness.strong_scaling Variants.Nvshmem problem ~gpu_counts:[ 2; 4 ] in
        check_int "points" 2 (List.length pts));
    Alcotest.test_case "verify requires backed buffers" `Quick (fun () ->
        let problem = Problem.make (d2 16 16) ~iterations:1 in
        match Harness.verify_env Variants.Copy problem ~gpus:2 with
        | Ok _ -> Alcotest.fail "should refuse phantom"
        | Error m -> check_bool "explains" true (Astring.String.is_infix ~affix:"backed" m));
    Alcotest.test_case "cpu-free beats the fully CPU-controlled baseline (small domain)"
      `Quick (fun () ->
        let problem = Problem.make (d2 256 256) ~iterations:50 in
        let copy = Harness.run_env Variants.Copy problem ~gpus:8 in
        let free = Harness.run_env Variants.Cpu_free problem ~gpus:8 in
        check_bool "faster" true Time.(free.Measure.total < copy.Measure.total);
        let speedup = Measure.speedup_pct ~baseline:copy ~ours:free in
        check_bool "large speedup" true (speedup > 50.0));
    Alcotest.test_case "norm checking costs more under CPU control" `Quick (fun () ->
        (* With a residual check every iteration, baselines pay a device
           kernel + D2H copy + host allreduce; CPU-Free reduces on device. *)
        let run kind norm =
          let problem =
            Problem.make ?norm_every:norm (d2 512 512) ~iterations:20
          in
          Harness.run_env kind problem ~gpus:4
        in
        let base_plain = run Variants.Nvshmem None in
        let base_norm = run Variants.Nvshmem (Some 1) in
        let free_plain = run Variants.Cpu_free None in
        let free_norm = run Variants.Cpu_free (Some 1) in
        check_bool "baseline pays" true
          Time.(base_norm.Measure.total > base_plain.Measure.total);
        check_bool "cpu-free pays" true
          Time.(free_norm.Measure.total > free_plain.Measure.total);
        let overhead r0 r1 =
          Time.to_sec_float r1.Measure.total -. Time.to_sec_float r0.Measure.total
        in
        check_bool "cpu-free norm is cheaper" true
          (overhead free_plain free_norm < overhead base_plain base_norm));
    Alcotest.test_case "norm checking does not disturb the numerics" `Quick (fun () ->
        let problem = Problem.make ~backed:true ~norm_every:2 (d2 16 16) ~iterations:4 in
        List.iter
          (fun kind ->
            match Harness.verify_env kind problem ~gpus:4 with
            | Ok _ -> ()
            | Error m -> Alcotest.fail (Variants.name kind ^ ": " ^ m))
          [ Variants.Copy; Variants.Nvshmem; Variants.Cpu_free; Variants.Cpu_free_multi ]);
    Alcotest.test_case "norm_every must be positive" `Quick (fun () ->
        Alcotest.check_raises "zero" (Invalid_argument "Problem.make: norm_every must be positive")
          (fun () -> ignore (Problem.make ~norm_every:0 (d2 4 4) ~iterations:1)));
    Alcotest.test_case "H100 runs the same workload faster" `Quick (fun () ->
        let problem = Problem.make (d2 2048 2048) ~iterations:10 in
        let a100 = Harness.run_env ~arch:G.Arch.a100_hgx Variants.Cpu_free problem ~gpus:4 in
        let h100 = Harness.run_env ~arch:G.Arch.h100_hgx Variants.Cpu_free problem ~gpus:4 in
        check_bool "faster" true Time.(h100.Measure.total < a100.Measure.total));
    Alcotest.test_case "traced run produces device lanes" `Quick (fun () ->
        let problem = Problem.make (d2 64 64) ~iterations:2 in
        let _, trace = Harness.run_traced_env Variants.Overlap problem ~gpus:2 in
        check_bool "lanes" true (List.length (E.Trace.lanes trace) >= 2));
  ]

(* --- resilience: checkpoint/restart self-healing ------------------------- *)

module Fault = Cpufree_fault.Fault
module Env = Cpufree_obs.Sim_env

let kill_env s =
  match Fault.of_string s with
  | Ok spec -> Env.make ~faults:spec ~fault_seed:1 ()
  | Error e -> Alcotest.failf "spec: %s" e

let chaos_digest (cr : Harness.chaos_run) =
  let c = cr.Harness.chaos in
  ( Time.to_ns c.Measure.base.Measure.total,
    c.Measure.completed,
    Array.to_list cr.Harness.progress )

let resilience_tests =
  [
    Alcotest.test_case "a mid-run kill heals onto the survivors" `Quick (fun () ->
        let problem = Problem.make (d2 96 96) ~iterations:12 in
        let r =
          Harness.run_resilient ~env:(kill_env "kill=1@25") ~checkpoint_every:2
            Variants.Cpu_free problem ~gpus:3
        in
        check_bool "first attempt aborted" false
          r.Harness.r_first.Harness.chaos.Measure.completed;
        check (Alcotest.option Alcotest.int) "diagnosed the corpse" (Some 1) r.Harness.r_killed;
        check_int "survivors" 2 r.Harness.r_survivors;
        check_bool "resumed" true (r.Harness.r_resume <> None);
        check_bool "completed" true r.Harness.r_completed;
        check_bool "degraded" true r.Harness.r_degraded;
        check_int "checkpoint aligned" 0 (r.Harness.r_checkpoint mod 2);
        check_bool "restored from a real checkpoint" true (r.Harness.r_checkpoint > 0);
        check_int "work saved accounts every survivor" (2 * r.Harness.r_checkpoint)
          r.Harness.r_work_saved;
        check_bool "restart cost charged" true Time.(r.Harness.r_restart_cost > zero);
        check_bool "total covers attempt + restart + resume" true
          Time.(
            r.Harness.r_total
            > Time.add r.Harness.r_first.Harness.chaos.Measure.base.Measure.total
                r.Harness.r_restart_cost);
        match r.Harness.r_resume with
        | None -> Alcotest.fail "no resume run"
        | Some res ->
          check (Alcotest.list Alcotest.int) "survivors finish the remainder"
            [ 12 - r.Harness.r_checkpoint; 12 - r.Harness.r_checkpoint ]
            (Array.to_list res.Harness.progress));
    Alcotest.test_case "fault-free control is byte-identical to a plain run" `Quick (fun () ->
        let problem = Problem.make (d2 96 96) ~iterations:6 in
        let env = kill_env "kill=0@100000" in
        let r =
          Harness.run_resilient ~env ~checkpoint_every:3 Variants.Cpu_free problem ~gpus:2
        in
        check_bool "completed" true r.Harness.r_completed;
        check_bool "not degraded" false r.Harness.r_degraded;
        check_bool "no resume" true (r.Harness.r_resume = None);
        check_int "no restart cost" 0 (Time.to_ns r.Harness.r_restart_cost);
        let plain = Harness.run_chaos_env ~env Variants.Cpu_free problem ~gpus:2 in
        check_bool "digest matches the plain chaos run" true
          (chaos_digest r.Harness.r_first = chaos_digest plain);
        check_int "total is the plain total" (Time.to_ns plain.Harness.chaos.Measure.base.Measure.total)
          (Time.to_ns r.Harness.r_total));
    Alcotest.test_case "bad arguments are rejected" `Quick (fun () ->
        let problem = Problem.make (d2 32 32) ~iterations:2 in
        Alcotest.check_raises "zero interval"
          (Invalid_argument "Harness.run_resilient: checkpoint interval must be positive")
          (fun () ->
            ignore
              (Harness.run_resilient ~env:(kill_env "kill=0@10") ~checkpoint_every:0
                 Variants.Cpu_free problem ~gpus:2));
        Alcotest.check_raises "missing fault plan"
          (Invalid_argument "Harness.run_resilient: env.faults must be set")
          (fun () ->
            ignore
              (Harness.run_resilient ~env:(Env.make ()) ~checkpoint_every:2
                 Variants.Cpu_free problem ~gpus:2)));
  ]

let () =
  Alcotest.run "stencil"
    [
      ("problem", problem_tests);
      ("compute", compute_tests);
      ("slab", slab_tests);
      ("variants-verify", verification_tests);
      ("variants-misc", variant_misc_tests @ variant_props);
      ("harness", scaling_tests);
      ("resilience", resilience_tests);
    ]
