(* The generic auto-offload pass: analysis classification, 1-D sharding
   (placement) verified numerically against the sequential reference, and
   the autotuner's search — determinism across runs and PDES modes, and the
   match-or-beat guarantee against the hand-built pipelines. *)

module E = Cpufree_engine
module G = Cpufree_gpu
module D = Cpufree_dace
module Analysis = D.Analysis
module Placement = D.Placement
module Autotune = D.Autotune
module Pipeline = D.Pipeline
module Programs = D.Programs
module Sdfg = D.Sdfg
module Measure = Cpufree_core.Measure
module Sim_env = Cpufree_obs.Sim_env
module Time = E.Time

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int
let check_string = check Alcotest.string

let cfg1d = { Programs.n_global = 64; tsteps = 4 }
let smoother_cfg = { Programs.sm_n = 64; sm_steps = 4 }

(* Large enough that offloading and sharding pay for the kernel-launch and
   exchange overheads (the crossover sits between 64k and 262k cells). *)
let smoother_big = { Programs.sm_n = 262144; sm_steps = 16 }

(* --- analysis ------------------------------------------------------------- *)

let analysis_tests =
  [
    Alcotest.test_case "stencil maps are data-parallel with halo 1" `Quick (fun () ->
        let sem = Sdfg.Jacobi1d { src = "A"; dst = "B" } in
        check_string "class" "data-parallel"
          (Analysis.parallelism_to_string (Analysis.classify_sem sem));
        check_int "halo" 1 (Analysis.sem_halo sem));
    Alcotest.test_case "in-place stencil is loop-carried" `Quick (fun () ->
        let sem = Sdfg.Jacobi1d { src = "A"; dst = "A" } in
        check_string "class" "loop-carried"
          (Analysis.parallelism_to_string (Analysis.classify_sem sem)));
    Alcotest.test_case "comm form distinguishes the three frontends" `Quick (fun () ->
        let form s = Analysis.comm_form_to_string (Analysis.comm_form s) in
        check_string "mpi" "mpi" (form (Programs.jacobi1d_mpi cfg1d ~gpus:4));
        check_string "nvshmem" "nvshmem" (form (Programs.jacobi1d_nvshmem cfg1d ~gpus:4));
        check_string "none" "none" (form (Programs.smoother_global smoother_cfg)));
    Alcotest.test_case "global smoother is not distributed; SPMD forms are" `Quick
      (fun () ->
        check_bool "global" false
          (Analysis.distributed (Programs.smoother_global smoother_cfg));
        check_bool "mpi" true (Analysis.distributed (Programs.jacobi1d_mpi cfg1d ~gpus:4)));
    Alcotest.test_case "halo arrays and stencil states of the smoother" `Quick (fun () ->
        let a = Analysis.analyze (Programs.smoother_global smoother_cfg) in
        check (Alcotest.list Alcotest.string) "halo arrays" [ "U"; "V"; "W" ] a.Analysis.halo_arrays;
        check
          (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
          "stencil states"
          [ ("smooth_V", "U"); ("smooth_W", "V"); ("smooth_U", "W") ]
          a.Analysis.stencil_states);
  ]

(* --- placement ------------------------------------------------------------ *)

let verify_smoother ?(cfg = smoother_cfg) ~gpus (built : D.Exec.built) =
  let reference = Programs.reference_smoother cfg in
  let n = cfg.Programs.sm_n / gpus in
  let worst = ref 0.0 in
  for pe = 0 to gpus - 1 do
    match built.D.Exec.read_array "U" ~pe with
    | None -> Alcotest.fail (Printf.sprintf "rank %d: array U not found" pe)
    | Some buf ->
      check_bool "backed" false (G.Buffer.is_phantom buf);
      for i = 1 to n do
        let err = Float.abs (G.Buffer.get buf i -. reference.((pe * n) + i)) in
        if err > !worst then worst := err
      done
  done;
  check_bool "tiny error" true (!worst <= 1e-9)

let run_plan ?(iterations = smoother_cfg.Programs.sm_steps) ~backed plan sdfg =
  let built = Autotune.build ~backed plan sdfg in
  let (_ : Measure.result) =
    Measure.run_env ~label:"test" ~gpus:plan.Autotune.gpus_used ~iterations
      built.D.Exec.program
  in
  built

let placement_tests =
  [
    Alcotest.test_case "shard_1d splits the global width" `Quick (fun () ->
        match Placement.shard_1d (Programs.smoother_global smoother_cfg) ~gpus:4 with
        | Error e -> Alcotest.fail e
        | Ok sh ->
          check_int "local" 16 sh.Placement.sh_local;
          check_int "global" 64 sh.Placement.sh_global;
          (* one exchange per stencil state, each with its own signal pair *)
          check_int "signals" 6 (List.length sh.Placement.sh_sdfg.Sdfg.sdfg_signals));
    Alcotest.test_case "sharded smoother matches the sequential reference" `Quick
      (fun () ->
        let gpus = 4 in
        let plan =
          {
            Autotune.shard = true;
            gpus_used = gpus;
            offload = Autotune.Offload_persistent { relax = true; specialize_tb = false };
          }
        in
        let built = run_plan ~backed:true plan (Programs.smoother_global smoother_cfg) in
        verify_smoother ~gpus built);
    Alcotest.test_case "already-distributed programs are rejected" `Quick (fun () ->
        match Placement.shard_1d (Programs.jacobi1d_nvshmem cfg1d ~gpus:4) ~gpus:4 with
        | Ok _ -> Alcotest.fail "expected rejection"
        | Error e -> check_bool "mentions distributed" true (Astring.String.is_infix ~affix:"distributed" e));
    Alcotest.test_case "indivisible widths are rejected" `Quick (fun () ->
        match
          Placement.shard_1d
            (Programs.smoother_global { Programs.sm_n = 10; sm_steps = 2 })
            ~gpus:4
        with
        | Ok _ -> Alcotest.fail "expected rejection"
        | Error e -> check_bool "names the width" true (Astring.String.is_infix ~affix:"10" e));
  ]

(* --- search --------------------------------------------------------------- *)

let search_exn ?env sdfg ~gpus ~iterations =
  match Autotune.search ?env sdfg ~gpus ~iterations with
  | Ok d -> d
  | Error e -> Alcotest.fail e

let apps =
  [
    ("jacobi1d", Pipeline.Jacobi1d cfg1d, 4);
    ("jacobi2d", Pipeline.Jacobi2d { Programs.nx_global = 16; ny_global = 16; tsteps = 3 }, 3);
    ("heat3d", Pipeline.Heat3d { Programs.nx3 = 6; ny3 = 6; nz3 = 16; tsteps3 = 3 }, 3);
  ]

let beats_hand_built (name, app, iters) =
  Alcotest.test_case (name ^ ": search matches or beats the hand-built arms") `Quick
    (fun () ->
      List.iter
        (fun arm ->
          let gpus = 4 in
          let sdfg = Pipeline.frontend app arm ~gpus in
          let hand = Pipeline.compile app arm ~gpus in
          let hand_cost =
            Measure.probe_env ~label:"hand" ~gpus ~iterations:iters
              hand.D.Exec.program
          in
          let d = search_exn sdfg ~gpus ~iterations:iters in
          check_bool
            (Printf.sprintf "%s: %s <= hand %s" (Pipeline.arm_name arm)
               (Time.to_string d.Autotune.predicted)
               (Time.to_string hand_cost))
            true
            Time.(d.Autotune.predicted <= hand_cost))
        [ Pipeline.Baseline_mpi; Pipeline.Cpu_free ])

let search_tests =
  List.map beats_hand_built apps
  @ [
      Alcotest.test_case "search is deterministic across runs and PDES modes" `Quick
        (fun () ->
          let sdfg = Programs.smoother_global smoother_cfg in
          let run env = search_exn ~env sdfg ~gpus:4 ~iterations:smoother_cfg.Programs.sm_steps in
          let d1 = run Sim_env.default in
          let d2 = run Sim_env.default in
          let d3 = run { Sim_env.default with Sim_env.pdes = Some `Seq } in
          let d4 = run { Sim_env.default with Sim_env.pdes = Some `Optimistic } in
          let plan d = Autotune.plan_to_string d.Autotune.best in
          check_string "rerun" (plan d1) (plan d2);
          check_string "seq" (plan d1) (plan d3);
          check_string "optimistic" (plan d1) (plan d4);
          check_int "same cost" 0 (Time.compare d1.Autotune.predicted d4.Autotune.predicted));
      Alcotest.test_case "smoother: search offloads host-size problems nowhere" `Quick
        (fun () ->
          (* At 64 cells the launch and exchange overheads dwarf the work:
             the honest winner is the un-offloaded host loop. *)
          let d =
            search_exn (Programs.smoother_global smoother_cfg) ~gpus:4
              ~iterations:smoother_cfg.Programs.sm_steps
          in
          check_string "host wins small" "host x1" (Autotune.plan_to_string d.Autotune.best));
      Alcotest.test_case "smoother: search shards large problems across the machine" `Quick
        (fun () ->
          let d =
            search_exn (Programs.smoother_global smoother_big) ~gpus:4
              ~iterations:smoother_big.Programs.sm_steps
          in
          check_bool "sharded" true d.Autotune.best.Autotune.shard;
          check_int "uses all gpus" 4 d.Autotune.best.Autotune.gpus_used;
          (* single-GPU fallbacks were also evaluated *)
          check_bool "evaluated fallbacks" true (List.length d.Autotune.evaluated > 4));
      Alcotest.test_case "non-enum SDFG runs end-to-end through the searched plan" `Quick
        (fun () ->
          let sdfg = Programs.smoother_global smoother_big in
          let d = search_exn sdfg ~gpus:4 ~iterations:smoother_big.Programs.sm_steps in
          check_bool "searched plan shards" true d.Autotune.best.Autotune.shard;
          let built =
            run_plan ~iterations:smoother_big.Programs.sm_steps ~backed:true
              d.Autotune.best sdfg
          in
          verify_smoother ~cfg:smoother_big ~gpus:d.Autotune.best.Autotune.gpus_used built);
      Alcotest.test_case "mixed MPI/NVSHMEM programs are rejected" `Quick (fun () ->
          let mpi = Programs.jacobi1d_mpi cfg1d ~gpus:2 in
          let nv = Programs.jacobi1d_nvshmem cfg1d ~gpus:2 in
          let mixed =
            {
              mpi with
              Sdfg.states =
                mpi.Sdfg.states
                @ [ List.find (fun s -> s.Sdfg.st_name = "exch_A") nv.Sdfg.states ];
            }
          in
          match Autotune.candidates mixed ~gpus:2 with
          | Ok _ -> Alcotest.fail "expected rejection"
          | Error e -> check_bool "says mixed" true (Astring.String.is_infix ~affix:"mixes" e));
    ]

let () =
  Alcotest.run "autotune"
    [
      ("analysis", analysis_tests);
      ("placement", placement_tests);
      ("search", search_tests);
    ]
