(* Tests for the discrete-event core: time, heap, rng, stats, trace, engine,
   synchronization primitives. *)

module E = Cpufree_engine
module Time = E.Time
module Heap = E.Heap
module Rng = E.Rng
module Stats = E.Stats
module Trace = E.Trace
module Engine = E.Engine
module Sync = E.Sync

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_float msg = check (Alcotest.float 1e-9) msg
let check_time msg expected actual = check_int msg (Time.to_ns expected) (Time.to_ns actual)

(* Run [f] as the sole initial process of a fresh engine and drain it. *)
let run_sim f =
  let eng = Engine.create () in
  let (_ : Engine.process) = Engine.spawn eng ~name:"main" (fun () -> f eng) in
  Engine.run eng;
  eng

(* --- Time -------------------------------------------------------------- *)

let time_tests =
  [
    Alcotest.test_case "constructors scale" `Quick (fun () ->
        check_int "us" 1_000 (Time.to_ns (Time.us 1));
        check_int "ms" 1_000_000 (Time.to_ns (Time.ms 1));
        check_int "sec" 1_000_000_000 (Time.to_ns (Time.sec 1)));
    Alcotest.test_case "negative duration rejected" `Quick (fun () ->
        Alcotest.check_raises "ns" (Invalid_argument "Time.ns: negative") (fun () ->
            ignore (Time.ns (-1))));
    Alcotest.test_case "add and sub" `Quick (fun () ->
        check_time "add" (Time.ns 30) (Time.add (Time.ns 10) (Time.ns 20));
        check_time "sub" (Time.ns 10) (Time.sub (Time.ns 30) (Time.ns 20)));
    Alcotest.test_case "sub saturates at zero" `Quick (fun () ->
        check_time "saturate" Time.zero (Time.sub (Time.ns 5) (Time.ns 9)));
    Alcotest.test_case "diff is symmetric" `Quick (fun () ->
        check_time "a-b" (Time.ns 4) (Time.diff (Time.ns 9) (Time.ns 5));
        check_time "b-a" (Time.ns 4) (Time.diff (Time.ns 5) (Time.ns 9)));
    Alcotest.test_case "of_ns_float rounds" `Quick (fun () ->
        check_int "round up" 3 (Time.to_ns (Time.of_ns_float 2.6));
        check_int "round down" 2 (Time.to_ns (Time.of_ns_float 2.4));
        check_int "clamps negative" 0 (Time.to_ns (Time.of_ns_float (-5.0))));
    Alcotest.test_case "of_sec_float round trip" `Quick (fun () ->
        check_float "sec" 1.5 (Time.to_sec_float (Time.of_sec_float 1.5)));
    Alcotest.test_case "scale" `Quick (fun () ->
        check_int "half" 50 (Time.to_ns (Time.scale (Time.ns 100) 0.5)));
    Alcotest.test_case "comparisons" `Quick (fun () ->
        check_bool "lt" true Time.(Time.ns 1 < Time.ns 2);
        check_bool "ge" true Time.(Time.ns 2 >= Time.ns 2);
        check_bool "equal" true (Time.equal (Time.ns 7) (Time.ns 7)));
    Alcotest.test_case "pretty printing picks units" `Quick (fun () ->
        check Alcotest.string "ns" "999ns" (Time.to_string (Time.ns 999));
        check Alcotest.string "us" "1.50us" (Time.to_string (Time.ns 1_500));
        check Alcotest.string "ms" "2.000ms" (Time.to_string (Time.ms 2));
        check Alcotest.string "s" "2.5000s" (Time.to_string (Time.ms 2_500)));
  ]

let time_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"add commutes" ~count:200
         QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
         (fun (a, b) ->
           Time.equal (Time.add (Time.ns a) (Time.ns b)) (Time.add (Time.ns b) (Time.ns a))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"sub never negative" ~count:200
         QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
         (fun (a, b) -> Time.(Time.sub (Time.ns a) (Time.ns b) >= Time.zero)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"max is upper bound" ~count:200
         QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
         (fun (a, b) ->
           let m = Time.max (Time.ns a) (Time.ns b) in
           Time.(Time.ns a <= m) && Time.(Time.ns b <= m)));
  ]

(* --- Heap -------------------------------------------------------------- *)

let heap_tests =
  [
    Alcotest.test_case "empty pops nothing" `Quick (fun () ->
        let h = Heap.create ~cmp:Int.compare in
        check_bool "empty" true (Heap.is_empty h);
        check_bool "pop" true (Heap.pop h = None);
        check_bool "peek" true (Heap.peek h = None));
    Alcotest.test_case "pops in sorted order" `Quick (fun () ->
        let h = Heap.create ~cmp:Int.compare in
        List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 0 ];
        let rec drain acc =
          match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
        in
        check (Alcotest.list Alcotest.int) "sorted" [ 0; 1; 1; 3; 4; 5; 9 ] (drain []));
    Alcotest.test_case "peek does not remove" `Quick (fun () ->
        let h = Heap.create ~cmp:Int.compare in
        Heap.push h 2;
        Heap.push h 1;
        check_bool "peek" true (Heap.peek h = Some 1);
        check_int "length" 2 (Heap.length h));
    Alcotest.test_case "clear empties" `Quick (fun () ->
        let h = Heap.create ~cmp:Int.compare in
        List.iter (Heap.push h) [ 1; 2; 3 ];
        Heap.clear h;
        check_bool "empty" true (Heap.is_empty h));
    Alcotest.test_case "to_list_unordered holds contents" `Quick (fun () ->
        let h = Heap.create ~cmp:Int.compare in
        List.iter (Heap.push h) [ 3; 1; 2 ];
        check (Alcotest.list Alcotest.int) "contents" [ 1; 2; 3 ]
          (List.sort Int.compare (Heap.to_list_unordered h)));
  ]

let heap_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"heap sort equals list sort" ~count:100
         QCheck.(list small_int)
         (fun xs ->
           let h = Heap.create ~cmp:Int.compare in
           List.iter (Heap.push h) xs;
           let rec drain acc =
             match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
           in
           drain [] = List.sort Int.compare xs));
    (* Interleaved pushes and pops against a sorted-list model: every pop
       must yield the minimum of what has been pushed and not yet popped. *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random push/pop ops match a sorted model" ~count:200
         QCheck.(list_of_size Gen.(0 -- 60) (option small_int))
         (fun ops ->
           let h = Heap.create ~cmp:Int.compare in
           let model = ref [] in
           List.for_all
             (fun op ->
               match op with
               | Some x ->
                 Heap.push h x;
                 model := List.sort Int.compare (x :: !model);
                 Heap.length h = List.length !model
               | None -> (
                 match (Heap.pop h, !model) with
                 | None, [] -> true
                 | Some got, expected :: rest ->
                   model := rest;
                   got = expected
                 | None, _ :: _ | Some _, [] -> false))
             ops));
  ]

(* --- Rng --------------------------------------------------------------- *)

let rng_tests =
  [
    Alcotest.test_case "deterministic for a seed" `Quick (fun () ->
        let a = Rng.create 42 and b = Rng.create 42 in
        for _ = 1 to 20 do
          check_int "same" (Rng.int a 1_000_000) (Rng.int b 1_000_000)
        done);
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = Rng.create 1 and b = Rng.create 2 in
        let same = ref 0 in
        for _ = 1 to 20 do
          if Rng.int a 1_000_000 = Rng.int b 1_000_000 then incr same
        done;
        check_bool "mostly different" true (!same < 3));
    Alcotest.test_case "split is independent" `Quick (fun () ->
        let parent = Rng.create 7 in
        let child = Rng.split parent in
        let c1 = Rng.int child 1000 in
        (* Same construction must yield the same child stream. *)
        let parent2 = Rng.create 7 in
        let child2 = Rng.split parent2 in
        check_int "reproducible" c1 (Rng.int child2 1000));
    Alcotest.test_case "int bound rejected when non-positive" `Quick (fun () ->
        let r = Rng.create 3 in
        Alcotest.check_raises "zero" (Invalid_argument "Rng.int: bound must be positive")
          (fun () -> ignore (Rng.int r 0)));
    Alcotest.test_case "gaussian is finite" `Quick (fun () ->
        let r = Rng.create 11 in
        for _ = 1 to 100 do
          let x = Rng.gaussian r ~mu:0.0 ~sigma:1.0 in
          check_bool "finite" true (Float.is_finite x)
        done);
  ]

let rng_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"int stays in bounds" ~count:300
         QCheck.(pair small_int (int_range 1 10_000))
         (fun (seed, bound) ->
           let r = Rng.create seed in
           let x = Rng.int r bound in
           x >= 0 && x < bound));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"float stays in bounds" ~count:300 QCheck.small_int (fun seed ->
           let r = Rng.create seed in
           let x = Rng.float r 5.0 in
           x >= 0.0 && x < 5.0));
  ]

(* --- Stats ------------------------------------------------------------- *)

let stats_tests =
  [
    Alcotest.test_case "basic accumulation" `Quick (fun () ->
        let s = Stats.create () in
        List.iter (Stats.add s) [ 3.0; 1.0; 2.0 ];
        check_int "count" 3 (Stats.count s);
        check_float "min" 1.0 (Stats.min s);
        check_float "max" 3.0 (Stats.max s);
        check_float "mean" 2.0 (Stats.mean s);
        check_float "sum" 6.0 (Stats.sum s));
    Alcotest.test_case "empty statistics raise" `Quick (fun () ->
        let s = Stats.create () in
        Alcotest.check_raises "min" (Invalid_argument "Stats.min: empty") (fun () ->
            ignore (Stats.min s)));
    Alcotest.test_case "stddev of constant is zero" `Quick (fun () ->
        let s = Stats.create () in
        List.iter (Stats.add s) [ 4.0; 4.0; 4.0 ];
        check_float "sd" 0.0 (Stats.stddev s));
    Alcotest.test_case "stddev known value" `Quick (fun () ->
        let s = Stats.create () in
        List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
        check (Alcotest.float 1e-6) "sd" 2.13808993529939 (Stats.stddev s));
    Alcotest.test_case "percentiles interpolate" `Quick (fun () ->
        let s = Stats.create () in
        List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
        check_float "median" 2.5 (Stats.median s);
        check_float "p0" 1.0 (Stats.percentile s 0.0);
        check_float "p100" 4.0 (Stats.percentile s 100.0);
        check_float "p25" 1.75 (Stats.percentile s 25.0));
    Alcotest.test_case "percentile out of range" `Quick (fun () ->
        let s = Stats.create () in
        Stats.add s 1.0;
        Alcotest.check_raises "p" (Invalid_argument "Stats.percentile: p out of range")
          (fun () -> ignore (Stats.percentile s 101.0)));
    Alcotest.test_case "add_time records seconds" `Quick (fun () ->
        let s = Stats.create () in
        Stats.add_time s (Time.ms 1);
        check_float "val" 0.001 (Stats.min s));
    Alcotest.test_case "summarize" `Quick (fun () ->
        let s = Stats.create () in
        List.iter (Stats.add s) [ 1.0; 2.0; 3.0 ];
        let sm = Stats.summarize s in
        check_int "n" 3 sm.Stats.n;
        check_float "median" 2.0 sm.Stats.s_median);
    Alcotest.test_case "samples preserve order" `Quick (fun () ->
        let s = Stats.create () in
        List.iter (Stats.add s) [ 3.0; 1.0; 2.0 ];
        check (Alcotest.array (Alcotest.float 0.0)) "order" [| 3.0; 1.0; 2.0 |]
          (Stats.samples s));
  ]

let stats_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"min <= mean <= max" ~count:200
         QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
         (fun xs ->
           let s = Stats.create () in
           List.iter (Stats.add s) xs;
           Stats.min s <= Stats.mean s +. 1e-9 && Stats.mean s <= Stats.max s +. 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"median between min and max" ~count:200
         QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
         (fun xs ->
           let s = Stats.create () in
           List.iter (Stats.add s) xs;
           Stats.min s <= Stats.median s && Stats.median s <= Stats.max s));
  ]

(* --- Trace ------------------------------------------------------------- *)

let span lane kind t0 t1 trace =
  Trace.add trace ~lane ~label:"x" ~kind ~t0:(Time.ns t0) ~t1:(Time.ns t1)

(* --- Intervals --------------------------------------------------------- *)

module Intervals = E.Intervals

let ivals = List.map (fun (a, b) -> (Time.ns a, Time.ns b))

(* The representation invariant merge/intersect promise: sorted by start,
   non-empty, pairwise disjoint with strict gaps (touching spans coalesce). *)
let rec well_formed = function
  | [] -> true
  | [ (a, b) ] -> Time.(a < b)
  | (a, b) :: ((c, _) :: _ as rest) -> Time.(a < b) && Time.(b < c) && well_formed rest

let interval_tests =
  [
    Alcotest.test_case "merge coalesces overlap and adjacency" `Quick (fun () ->
        let m = Intervals.merge (ivals [ (5, 7); (0, 2); (2, 4); (6, 9) ]) in
        check_bool "cover" true (m = ivals [ (0, 4); (5, 9) ]);
        check_int "total" 8 (Time.to_ns (Intervals.total m)));
    Alcotest.test_case "merge drops empty intervals" `Quick (fun () ->
        check_bool "empty" true (Intervals.merge (ivals [ (3, 3); (9, 4) ]) = []));
    Alcotest.test_case "intersect overlapping covers" `Quick (fun () ->
        let a = ivals [ (0, 10); (20, 30) ] and b = ivals [ (5, 25) ] in
        check_bool "meet" true (Intervals.intersect a b = ivals [ (5, 10); (20, 25) ]));
    Alcotest.test_case "covered counts overlap once" `Quick (fun () ->
        let bag = ivals [ (0, 10); (5, 15) ] in
        check_int "sum" 20 (Time.to_ns (Intervals.total bag));
        check_int "union" 15 (Time.to_ns (Intervals.covered bag)));
  ]

let gen_intervals = QCheck.(list_of_size Gen.(0 -- 30) (pair (int_bound 120) (int_bound 120)))

let interval_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"merge output is sorted, disjoint, non-empty" ~count:300
         gen_intervals (fun xs -> well_formed (Intervals.merge (ivals xs))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"covered never exceeds the raw sum" ~count:300 gen_intervals
         (fun xs ->
           let bag = List.filter (fun (a, b) -> a < b) (ivals xs) in
           Time.(Intervals.covered bag <= Intervals.total bag)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"intersect is idempotent on merged covers" ~count:300
         gen_intervals (fun xs ->
           let m = Intervals.merge (ivals xs) in
           Intervals.intersect m m = m));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"intersect commutes" ~count:300
         QCheck.(pair gen_intervals gen_intervals)
         (fun (xs, ys) ->
           let a = Intervals.merge (ivals xs) and b = Intervals.merge (ivals ys) in
           Intervals.intersect a b = Intervals.intersect b a));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"merging merged halves equals merging the bag" ~count:300
         QCheck.(pair gen_intervals gen_intervals)
         (fun (xs, ys) ->
           Intervals.merge (ivals xs @ ivals ys)
           = Intervals.merge (Intervals.merge (ivals xs) @ Intervals.merge (ivals ys))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"intersection measure bounded by both sides" ~count:300
         QCheck.(pair gen_intervals gen_intervals)
         (fun (xs, ys) ->
           let a = Intervals.merge (ivals xs) and b = Intervals.merge (ivals ys) in
           let m = Intervals.total (Intervals.intersect a b) in
           Time.(m <= Intervals.total a) && Time.(m <= Intervals.total b)));
  ]

let trace_tests =
  [
    Alcotest.test_case "lanes sorted and distinct" `Quick (fun () ->
        let t = Trace.create () in
        span "b" Trace.Compute 0 5 t;
        span "a" Trace.Compute 2 3 t;
        span "b" Trace.Api 5 6 t;
        check (Alcotest.list Alcotest.string) "lanes" [ "a"; "b" ] (Trace.lanes t));
    Alcotest.test_case "busy time per lane" `Quick (fun () ->
        let t = Trace.create () in
        span "a" Trace.Compute 0 10 t;
        span "a" Trace.Communication 20 25 t;
        check_int "busy" 15 (Time.to_ns (Trace.busy_time t ~lane:"a")));
    Alcotest.test_case "merged busy time counts overlap once" `Quick (fun () ->
        let t = Trace.create () in
        span "a" Trace.Compute 0 10 t;
        span "a" Trace.Communication 5 15 t;
        span "a" Trace.Api 20 22 t;
        span "b" Trace.Compute 0 100 t;
        check_int "raw sum double-counts" 22 (Time.to_ns (Trace.busy_time t ~lane:"a"));
        check_int "merged wall-clock" 17 (Time.to_ns (Trace.busy_time_merged t ~lane:"a"));
        check_int "other lanes untouched" 100 (Time.to_ns (Trace.busy_time_merged t ~lane:"b"));
        (* An instant covered by k spans contributes k times to the raw sum,
           not merely twice: a third span over [6, 9) adds its full length. *)
        span "a" Trace.Compute 6 9 t;
        check_int "raw sum triple-counts" 25 (Time.to_ns (Trace.busy_time t ~lane:"a"));
        check_int "merged unchanged by nested span" 17
          (Time.to_ns (Trace.busy_time_merged t ~lane:"a")));
    Alcotest.test_case "busy time per kind" `Quick (fun () ->
        let t = Trace.create () in
        span "a" Trace.Compute 0 10 t;
        span "b" Trace.Compute 0 4 t;
        span "a" Trace.Api 10 11 t;
        check_int "compute" 14 (Time.to_ns (Trace.busy_time_kind t ~kind:Trace.Compute)));
    Alcotest.test_case "window spans all" `Quick (fun () ->
        let t = Trace.create () in
        span "a" Trace.Compute 5 10 t;
        span "b" Trace.Api 2 7 t;
        match Trace.window t with
        | None -> Alcotest.fail "no window"
        | Some (lo, hi) ->
          check_int "lo" 2 (Time.to_ns lo);
          check_int "hi" 10 (Time.to_ns hi));
    Alcotest.test_case "backwards span rejected" `Quick (fun () ->
        let t = Trace.create () in
        Alcotest.check_raises "bad" (Invalid_argument "Trace.add: span ends before it starts")
          (fun () -> span "a" Trace.Compute 5 4 t));
    Alcotest.test_case "ascii render mentions lanes and legend" `Quick (fun () ->
        let t = Trace.create () in
        span "gpu0" Trace.Compute 0 100 t;
        span "gpu0" Trace.Communication 100 200 t;
        let s = Trace.render_ascii ~width:40 t in
        check_bool "lane" true (Astring.String.is_infix ~affix:"gpu0" s);
        check_bool "legend" true (Astring.String.is_infix ~affix:"legend" s));
    Alcotest.test_case "csv has one line per span plus header" `Quick (fun () ->
        let t = Trace.create () in
        span "a" Trace.Compute 0 1 t;
        span "a" Trace.Api 1 2 t;
        let lines = String.split_on_char '\n' (String.trim (Trace.to_csv t)) in
        check_int "lines" 3 (List.length lines));
    Alcotest.test_case "chrome json export is well-formed-ish" `Quick (fun () ->
        let t = Trace.create () in
        span "gpu0" Trace.Compute 0 1000 t;
        span "gpu1" Trace.Communication 500 2000 t;
        let js = Trace.to_chrome_json t in
        check_bool "array" true (String.length js > 2 && js.[0] = '[');
        check_bool "complete events" true (Astring.String.is_infix ~affix:"\"ph\":\"X\"" js);
        check_bool "thread names" true (Astring.String.is_infix ~affix:"thread_name" js);
        check_bool "lane present" true (Astring.String.is_infix ~affix:"gpu1" js));
    Alcotest.test_case "clear resets" `Quick (fun () ->
        let t = Trace.create () in
        span "a" Trace.Compute 0 1 t;
        Trace.clear t;
        check_bool "empty" true (Trace.spans t = []));
    Alcotest.test_case "add_opt on None is a no-op" `Quick (fun () ->
        Trace.add_opt None ~lane:"x" ~label:"y" ~kind:Trace.Idle ~t0:Time.zero ~t1:Time.zero);
  ]

(* --- Engine ------------------------------------------------------------ *)

let engine_tests =
  [
    Alcotest.test_case "delay advances the clock" `Quick (fun () ->
        let eng = run_sim (fun eng -> Engine.delay eng (Time.us 5)) in
        check_int "now" 5_000 (Time.to_ns (Engine.now eng)));
    Alcotest.test_case "sequential delays accumulate" `Quick (fun () ->
        let eng =
          run_sim (fun eng ->
              Engine.delay eng (Time.ns 10);
              Engine.delay eng (Time.ns 20))
        in
        check_int "now" 30 (Time.to_ns (Engine.now eng)));
    Alcotest.test_case "processes interleave by timestamp" `Quick (fun () ->
        let order = ref [] in
        let eng = Engine.create () in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"slow" (fun () ->
              Engine.delay eng (Time.ns 20);
              order := "slow" :: !order)
        in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"fast" (fun () ->
              Engine.delay eng (Time.ns 10);
              order := "fast" :: !order)
        in
        Engine.run eng;
        check (Alcotest.list Alcotest.string) "order" [ "fast"; "slow" ] (List.rev !order));
    Alcotest.test_case "same-timestamp order follows spawn order" `Quick (fun () ->
        let order = ref [] in
        let eng = Engine.create () in
        for i = 1 to 5 do
          let (_ : Engine.process) =
            Engine.spawn eng ~name:(string_of_int i) (fun () -> order := i :: !order)
          in
          ()
        done;
        Engine.run eng;
        check (Alcotest.list Alcotest.int) "order" [ 1; 2; 3; 4; 5 ] (List.rev !order));
    Alcotest.test_case "spawn from inside a process" `Quick (fun () ->
        let hit = ref false in
        let (_ : Engine.t) =
          run_sim (fun eng ->
              let (_ : Engine.process) =
                Engine.spawn eng ~name:"child" (fun () -> hit := true)
              in
              Engine.delay eng (Time.ns 1))
        in
        check_bool "child ran" true !hit);
    Alcotest.test_case "process_done reflects completion" `Quick (fun () ->
        let eng = Engine.create () in
        let p = Engine.spawn eng ~name:"p" (fun () -> Engine.delay eng (Time.ns 1)) in
        check_bool "not yet" false (Engine.process_done p);
        Engine.run eng;
        check_bool "done" true (Engine.process_done p));
    Alcotest.test_case "deadlock reports blocked processes" `Quick (fun () ->
        let eng = Engine.create () in
        let flag = Sync.Flag.create ~name:"never" eng 0 in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"stuck" (fun () -> Sync.Flag.wait_ge flag 1)
        in
        match Engine.run eng with
        | () -> Alcotest.fail "expected deadlock"
        | exception Engine.Deadlock names ->
          check_int "one blocked" 1 (List.length names);
          check_bool "named" true (Astring.String.is_infix ~affix:"stuck" (List.hd names)));
    Alcotest.test_case "daemons are exempt from deadlock" `Quick (fun () ->
        let eng = Engine.create () in
        let flag = Sync.Flag.create ~name:"never" eng 0 in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"server" ~daemon:true (fun () -> Sync.Flag.wait_ge flag 1)
        in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"main" (fun () -> Engine.delay eng (Time.ns 5))
        in
        Engine.run eng;
        check_int "now" 5 (Time.to_ns (Engine.now eng)));
    Alcotest.test_case "run ~until stops the clock" `Quick (fun () ->
        let eng = Engine.create () in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"long" (fun () -> Engine.delay eng (Time.us 100))
        in
        Engine.run ~until:(Time.us 10) eng;
        check_int "paused" 10_000 (Time.to_ns (Engine.now eng));
        Engine.run eng;
        check_int "finished" 100_000 (Time.to_ns (Engine.now eng)));
    Alcotest.test_case "schedule_at rejects the past" `Quick (fun () ->
        let (_ : Engine.t) =
          run_sim (fun eng ->
              Engine.delay eng (Time.ns 10);
              Alcotest.check_raises "past"
                (Invalid_argument "Engine.schedule_at: time in the past") (fun () ->
                  Engine.schedule_at eng (Time.ns 5) (fun () -> ())))
        in
        ());
    Alcotest.test_case "elapse measures a section" `Quick (fun () ->
        let (_ : Engine.t) =
          run_sim (fun eng ->
              let d = Engine.elapse eng (fun () -> Engine.delay eng (Time.ns 42)) in
              check_int "elapsed" 42 (Time.to_ns d))
        in
        ());
    Alcotest.test_case "suspend resumes via waker" `Quick (fun () ->
        let waker = ref (fun () -> ()) in
        let resumed_at = ref Time.zero in
        let eng = Engine.create () in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"sleeper" (fun () ->
              Engine.suspend eng ~reason:"test" (fun w -> waker := w);
              resumed_at := Engine.now eng)
        in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"waker" (fun () ->
              Engine.delay eng (Time.ns 33);
              !waker ())
        in
        Engine.run eng;
        check_int "resumed" 33 (Time.to_ns !resumed_at));
    Alcotest.test_case "double wake is harmless" `Quick (fun () ->
        let waker = ref (fun () -> ()) in
        let count = ref 0 in
        let eng = Engine.create () in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"s" (fun () ->
              Engine.suspend eng ~reason:"t" (fun w -> waker := w);
              incr count)
        in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"w" (fun () ->
              Engine.delay eng (Time.ns 1);
              !waker ();
              !waker ())
        in
        Engine.run eng;
        check_int "once" 1 !count);
  ]

(* --- Sync -------------------------------------------------------------- *)

let sync_tests =
  [
    Alcotest.test_case "flag wait passes immediately when satisfied" `Quick (fun () ->
        let eng =
          run_sim (fun eng ->
              let f = Sync.Flag.create eng 5 in
              Sync.Flag.wait_ge f 3)
        in
        check_int "no time" 0 (Time.to_ns (Engine.now eng)));
    Alcotest.test_case "flag wakes a waiter on set" `Quick (fun () ->
        let eng = Engine.create () in
        let f = Sync.Flag.create eng 0 in
        let woke_at = ref Time.zero in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"waiter" (fun () ->
              Sync.Flag.wait_ge f 2;
              woke_at := Engine.now eng)
        in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"setter" (fun () ->
              Engine.delay eng (Time.ns 10);
              Sync.Flag.set f 1;
              Engine.delay eng (Time.ns 10);
              Sync.Flag.set f 2)
        in
        Engine.run eng;
        check_int "woke at second set" 20 (Time.to_ns !woke_at));
    Alcotest.test_case "flag add accumulates" `Quick (fun () ->
        let eng = Engine.create () in
        let f = Sync.Flag.create eng 0 in
        Sync.Flag.add f 3;
        Sync.Flag.add f (-1);
        ignore eng;
        check_int "value" 2 (Sync.Flag.get f));
    Alcotest.test_case "flag wakes multiple waiters" `Quick (fun () ->
        let eng = Engine.create () in
        let f = Sync.Flag.create eng 0 in
        let woke = ref 0 in
        for _ = 1 to 3 do
          let (_ : Engine.process) =
            Engine.spawn eng ~name:"w" (fun () ->
                Sync.Flag.wait_ge f 1;
                incr woke)
          in
          ()
        done;
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"s" (fun () ->
              Engine.delay eng (Time.ns 1);
              Sync.Flag.set f 1)
        in
        Engine.run eng;
        check_int "all woke" 3 !woke);
    Alcotest.test_case "barrier releases all at once" `Quick (fun () ->
        let eng = Engine.create () in
        let b = Sync.Barrier.create eng 3 in
        let release_times = ref [] in
        for i = 1 to 3 do
          let (_ : Engine.process) =
            Engine.spawn eng ~name:"p" (fun () ->
                Engine.delay eng (Time.ns (i * 10));
                Sync.Barrier.wait b;
                release_times := Time.to_ns (Engine.now eng) :: !release_times)
          in
          ()
        done;
        Engine.run eng;
        check (Alcotest.list Alcotest.int) "all at t=30" [ 30; 30; 30 ] !release_times;
        check_int "generation" 1 (Sync.Barrier.generation b));
    Alcotest.test_case "barrier is reusable" `Quick (fun () ->
        let eng = Engine.create () in
        let b = Sync.Barrier.create eng 2 in
        for _ = 1 to 2 do
          let (_ : Engine.process) =
            Engine.spawn eng ~name:"p" (fun () ->
                Sync.Barrier.wait b;
                Sync.Barrier.wait b)
          in
          ()
        done;
        Engine.run eng;
        check_int "two generations" 2 (Sync.Barrier.generation b));
    Alcotest.test_case "back-to-back rounds at the same instant" `Quick (fun () ->
        (* Both parties hit the barrier twice with no intervening delay, so
           the second round's arrivals land at the same simulated instant as
           the first round's release. With count-based wake-ups a released
           waiter could observe the re-armed [arrived] count and stall (or
           release early); the generation counter must carry each waiter
           through exactly two rounds. *)
        let eng = Engine.create () in
        let b = Sync.Barrier.create eng 2 in
        let rounds = ref [] in
        for i = 1 to 2 do
          let (_ : Engine.process) =
            Engine.spawn eng ~name:(Printf.sprintf "p%d" i) (fun () ->
                Sync.Barrier.wait b;
                rounds := (i, 1, Time.to_ns (Engine.now eng)) :: !rounds;
                Sync.Barrier.wait b;
                rounds := (i, 2, Time.to_ns (Engine.now eng)) :: !rounds)
          in
          ()
        done;
        Engine.run eng;
        check_int "generations" 2 (Sync.Barrier.generation b);
        check_int "four releases" 4 (List.length !rounds);
        List.iter (fun (_, _, t) -> check_int "all at t=0" 0 t) !rounds;
        (* Every process must have completed both rounds. *)
        List.iter
          (fun i ->
            check_bool "round 1" true (List.exists (fun (p, r, _) -> p = i && r = 1) !rounds);
            check_bool "round 2" true (List.exists (fun (p, r, _) -> p = i && r = 2) !rounds))
          [ 1; 2 ]);
    Alcotest.test_case "straggler joining a same-instant re-arm is not lost" `Quick (fun () ->
        (* One fast process loops the barrier twice while the slow partner
           arrives once per round at the same timestamps; a stale [arrived]
           observation would deadlock the sweep. *)
        let eng = Engine.create () in
        let b = Sync.Barrier.create eng 3 in
        let finished = ref 0 in
        for _ = 1 to 3 do
          let (_ : Engine.process) =
            Engine.spawn eng ~name:"p" (fun () ->
                for _ = 1 to 5 do
                  Sync.Barrier.wait b
                done;
                incr finished)
          in
          ()
        done;
        Engine.run eng;
        check_int "five generations" 5 (Sync.Barrier.generation b);
        check_int "all finished" 3 !finished);
    Alcotest.test_case "barrier rejects non-positive parties" `Quick (fun () ->
        let eng = Engine.create () in
        Alcotest.check_raises "zero" (Invalid_argument "Barrier.create: parties must be positive")
          (fun () -> ignore (Sync.Barrier.create eng 0)));
    Alcotest.test_case "mailbox preserves FIFO order" `Quick (fun () ->
        let eng = Engine.create () in
        let mb = Sync.Mailbox.create eng () in
        let got = ref [] in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"recv" (fun () ->
              for _ = 1 to 3 do
                got := Sync.Mailbox.recv mb :: !got
              done)
        in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"send" (fun () ->
              Engine.delay eng (Time.ns 1);
              List.iter (Sync.Mailbox.send mb) [ 1; 2; 3 ])
        in
        Engine.run eng;
        check (Alcotest.list Alcotest.int) "fifo" [ 1; 2; 3 ] (List.rev !got));
    Alcotest.test_case "mailbox try_recv" `Quick (fun () ->
        let eng = Engine.create () in
        let mb = Sync.Mailbox.create eng () in
        check_bool "empty" true (Sync.Mailbox.try_recv mb = None);
        Sync.Mailbox.send mb 9;
        check_bool "item" true (Sync.Mailbox.try_recv mb = Some 9);
        check_int "length" 0 (Sync.Mailbox.length mb));
    Alcotest.test_case "resource serializes bookings" `Quick (fun () ->
        let eng = Engine.create () in
        let r = Sync.Resource.create eng () in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"a" (fun () ->
              let start = Sync.Resource.book r ~duration:(Time.ns 100) in
              check_int "first starts now" 0 (Time.to_ns start);
              let start2 = Sync.Resource.book r ~duration:(Time.ns 50) in
              check_int "second queues" 100 (Time.to_ns start2);
              check_int "busy" 150 (Time.to_ns (Sync.Resource.busy r)))
        in
        Engine.run eng);
    Alcotest.test_case "book_many starts at the latest port" `Quick (fun () ->
        let eng = Engine.create () in
        let a = Sync.Resource.create eng () and b = Sync.Resource.create eng () in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"x" (fun () ->
              let (_ : Time.t) = Sync.Resource.book a ~duration:(Time.ns 70) in
              let start = Sync.Resource.book_many [ a; b ] ~duration:(Time.ns 10) in
              check_int "waits for a" 70 (Time.to_ns start);
              check_int "b free_at updated" 80 (Time.to_ns (Sync.Resource.free_at b)))
        in
        Engine.run eng);
    Alcotest.test_case "semaphore blocks at zero" `Quick (fun () ->
        let eng = Engine.create () in
        let s = Sync.Semaphore.create eng 1 in
        let acquired_at = ref [] in
        for _ = 1 to 2 do
          let (_ : Engine.process) =
            Engine.spawn eng ~name:"u" (fun () ->
                Sync.Semaphore.acquire s;
                acquired_at := Time.to_ns (Engine.now eng) :: !acquired_at;
                Engine.delay eng (Time.ns 10);
                Sync.Semaphore.release s)
          in
          ()
        done;
        Engine.run eng;
        check (Alcotest.list Alcotest.int) "staggered" [ 10; 0 ] !acquired_at);
    Alcotest.test_case "semaphore availability tracks acquire/release" `Quick (fun () ->
        let eng = Engine.create () in
        let s = Sync.Semaphore.create eng 3 in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"p" (fun () ->
              Sync.Semaphore.acquire s;
              check_int "two left" 2 (Sync.Semaphore.available s);
              Sync.Semaphore.release s;
              check_int "back to three" 3 (Sync.Semaphore.available s))
        in
        Engine.run eng);
    Alcotest.test_case "negative semaphore count rejected" `Quick (fun () ->
        let eng = Engine.create () in
        Alcotest.check_raises "neg" (Invalid_argument "Semaphore.create: negative count")
          (fun () -> ignore (Sync.Semaphore.create eng (-1))));
  ]

(* --- Partitions and windowed execution ---------------------------------- *)

let lookahead = Time.ns 1000

(* A ring model whose every cross-partition interaction is a [post] one
   lookahead in the future — the shape [run_windowed] is sound for. Rank [g]
   lives on partition [g + 1]; partition 0 (the "host") stays empty. Delays
   are a seed-dependent arithmetic hash so partitions drift apart and windows
   cut the event streams at irregular points. *)
let build_ring ?trace ~parts ~iters ~seed () =
  let eng = Engine.create ?trace ~partitions:parts ~isolated:true () in
  let ranks = parts - 1 in
  let flags = Array.init ranks (fun g -> Sync.Flag.create ~name:(Printf.sprintf "f%d" g) eng 0) in
  let totals = Array.make ranks 0 in
  for g = 0 to ranks - 1 do
    let (_ : Engine.process) =
      Engine.spawn eng ~name:(Printf.sprintf "rank%d" g) ~partition:(g + 1) (fun () ->
          for it = 1 to iters do
            let t0 = Engine.now eng in
            let d = 1 + ((seed + (g * 37) + (it * 11)) mod 97) in
            Engine.delay eng (Time.ns d);
            Trace.add_opt (Engine.trace eng) ~lane:(Printf.sprintf "p%d" g) ~label:"work"
              ~kind:Trace.Compute ~t0 ~t1:(Engine.now eng);
            let dst = (g + 1) mod ranks in
            if dst <> g then begin
              let payload = (g * 1000) + it in
              Engine.post eng ~partition:(dst + 1)
                ~at:(Time.add (Engine.now eng) lookahead)
                (fun () ->
                  totals.(dst) <- totals.(dst) + payload;
                  Sync.Flag.add flags.(dst) 1);
              Sync.Flag.wait_ge flags.(g) it
            end
          done)
    in
    ()
  done;
  (eng, totals)

(* Everything a driver may not change: final clock, event count, delivered
   payload sums, and (when traced) the canonical span list. *)
let ring_output eng totals =
  ( Time.to_ns (Engine.now eng),
    Engine.events_executed eng,
    Array.to_list totals,
    match Engine.trace eng with None -> [] | Some tr -> Trace.sorted_spans tr )

let run_ring_seq ~parts ~iters ~seed =
  let eng, totals = build_ring ~trace:(Trace.create ()) ~parts ~iters ~seed () in
  Engine.run eng;
  ring_output eng totals

let run_ring_windowed ~jobs ~parts ~iters ~seed =
  let eng, totals = build_ring ~trace:(Trace.create ()) ~parts ~iters ~seed () in
  let outcome = Engine.run_windowed ~jobs ~lookahead eng in
  (outcome, ring_output eng totals)

let partition_tests =
  [
    Alcotest.test_case "post crosses partitions under the sequential driver" `Quick (fun () ->
        let eng = Engine.create ~partitions:3 () in
        let hits = ref [] in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"src" ~partition:1 (fun () ->
              Engine.delay eng (Time.ns 10);
              Engine.post eng ~partition:2 ~at:(Time.ns 50) (fun () -> hits := 2 :: !hits);
              Engine.post eng ~partition:0 ~at:(Time.ns 40) (fun () -> hits := 0 :: !hits))
        in
        Engine.run eng;
        check (Alcotest.list Alcotest.int) "in time order" [ 2; 0 ] !hits;
        check_int "clock at last event" 50 (Time.to_ns (Engine.now eng)));
    Alcotest.test_case "partition hint ignored on a single-partition engine" `Quick (fun () ->
        let eng = Engine.create () in
        let p = Engine.spawn eng ~name:"p" ~partition:7 (fun () -> ()) in
        check_int "clamped to 0" 0 (Engine.process_partition p);
        Engine.run eng);
    Alcotest.test_case "windowed run matches sequential bit-for-bit" `Quick (fun () ->
        let seq = run_ring_seq ~parts:4 ~iters:6 ~seed:5 in
        let outcome, win = run_ring_windowed ~jobs:2 ~parts:4 ~iters:6 ~seed:5 in
        (match outcome with
        | Engine.Windowed { windows; _ } -> check_bool "ran windows" true (windows > 0)
        | Engine.Sequential r -> Alcotest.fail ("unexpected fallback: " ^ r)
        | Engine.Adaptive _ | Engine.Optimistic _ -> Alcotest.fail "wrong driver");
        check_bool "identical output" true (seq = win));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"windowed equals sequential for any config and worker count"
         ~count:40
         QCheck.(triple (int_range 2 5) (int_range 1 8) small_int)
         (fun (parts, iters, seed) ->
           let seq = run_ring_seq ~parts ~iters ~seed in
           let _, win1 = run_ring_windowed ~jobs:1 ~parts ~iters ~seed in
           let _, win3 = run_ring_windowed ~jobs:3 ~parts ~iters ~seed in
           seq = win1 && seq = win3));
    Alcotest.test_case "zero lookahead falls back to sequential" `Quick (fun () ->
        let eng, totals = build_ring ~parts:3 ~iters:4 ~seed:1 () in
        (match Engine.run_windowed ~lookahead:Time.zero eng with
        | Engine.Sequential reason ->
          check_bool "reason mentions lookahead" true
            (Astring.String.is_infix ~affix:"lookahead" reason)
        | Engine.Windowed _ | Engine.Adaptive _ | Engine.Optimistic _ ->
          Alcotest.fail "expected sequential fallback");
        let seq_eng, seq_totals = build_ring ~parts:3 ~iters:4 ~seed:1 () in
        Engine.run seq_eng;
        check_bool "fallback output identical" true
          (ring_output eng totals = ring_output seq_eng seq_totals));
    Alcotest.test_case "engine without the isolation promise falls back" `Quick (fun () ->
        let eng = Engine.create ~partitions:3 () in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"p" ~partition:1 (fun () -> Engine.delay eng (Time.ns 5))
        in
        match Engine.run_windowed ~lookahead eng with
        | Engine.Sequential reason ->
          check_bool "reason mentions isolation" true
            (Astring.String.is_infix ~affix:"isolated" reason)
        | Engine.Windowed _ | Engine.Adaptive _ | Engine.Optimistic _ ->
          Alcotest.fail "expected sequential fallback");
    Alcotest.test_case "single-partition engine falls back" `Quick (fun () ->
        let eng = Engine.create ~isolated:true () in
        let (_ : Engine.process) = Engine.spawn eng ~name:"p" (fun () -> ()) in
        match Engine.run_windowed ~lookahead eng with
        | Engine.Sequential _ -> ()
        | Engine.Windowed _ | Engine.Adaptive _ | Engine.Optimistic _ ->
          Alcotest.fail "expected sequential fallback");
    Alcotest.test_case "cross-partition post inside the window raises" `Quick (fun () ->
        let eng = Engine.create ~partitions:3 ~isolated:true () in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"p" ~partition:1 (fun () ->
              Engine.delay eng (Time.ns 5);
              Engine.post eng ~partition:2 ~at:(Engine.now eng) (fun () -> ()))
        in
        match Engine.run_windowed ~lookahead eng with
        | exception Engine.Lookahead_violation _ -> ()
        | _ -> Alcotest.fail "expected Lookahead_violation");
    Alcotest.test_case "cross-partition spawn inside the window raises" `Quick (fun () ->
        let eng = Engine.create ~partitions:3 ~isolated:true () in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"p" ~partition:1 (fun () ->
              let (_ : Engine.process) =
                Engine.spawn eng ~name:"q" ~partition:2 (fun () -> ())
              in
              ())
        in
        match Engine.run_windowed ~lookahead eng with
        | exception Engine.Lookahead_violation _ -> ()
        | _ -> Alcotest.fail "expected Lookahead_violation");
    Alcotest.test_case "finished processes leave the registry" `Quick (fun () ->
        let eng = Engine.create () in
        for i = 1 to 50 do
          let (_ : Engine.process) =
            Engine.spawn eng ~name:(Printf.sprintf "p%d" i) (fun () ->
                Engine.delay eng (Time.ns i))
          in
          ()
        done;
        Engine.run eng;
        check_int "registry drained" 0 (Engine.registered_processes eng);
        check (Alcotest.list Alcotest.string) "nothing blocked" []
          (Engine.blocked_descriptions eng));
    Alcotest.test_case "blocked daemons stay registered, finished ones do not" `Quick
      (fun () ->
        let eng = Engine.create () in
        let f = Sync.Flag.create ~name:"never" eng 0 in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"d" ~daemon:true (fun () -> Sync.Flag.wait_ge f 1)
        in
        let (_ : Engine.process) = Engine.spawn eng ~name:"p" (fun () -> ()) in
        Engine.run eng;
        check_int "daemon still live" 1 (Engine.registered_processes eng));
  ]

(* --- Optimistic (Time Warp) execution ----------------------------------- *)

(* Event-driven formulation of the ring: no processes, per-rank state in
   plain arrays restored from checkpoints via [register_state] — the shape
   the optimistic driver can actually speculate on. Rank [g] runs [iters]
   irregular-cost steps; every [sync] iterations it posts a payload one
   lookahead ahead to its successor and blocks (recorded in [pending]) until
   its own inbound count catches up. [skew] adds extra per-step cost on rank
   0, the load imbalance that makes other ranks speculate into its past and
   forces rollbacks. *)
let build_ev_ring ?(skew = 0) ~parts ~iters ~sync ~seed () =
  let eng = Engine.create ~partitions:parts ~isolated:true () in
  let ranks = parts - 1 in
  let totals = Array.make ranks 0 in
  let counts = Array.make ranks 0 in
  let pending = Array.make ranks 0 in
  let is_sync it = it mod sync = 0 || it = iters in
  let sync_count it = (it / sync) + if it = iters && iters mod sync <> 0 then 1 else 0 in
  let rec step g it t =
    let d = 1 + ((seed + (g * 37) + (it * 11)) mod 97) + if g = 0 then skew else 0 in
    let t1 = Time.add t (Time.ns d) in
    Engine.post eng ~partition:(g + 1) ~at:t1 (fun () ->
        let dst = (g + 1) mod ranks in
        if dst <> g && is_sync it then begin
          let payload = (g * 1000) + it in
          Engine.post eng ~partition:(dst + 1) ~at:(Time.add t1 lookahead) (fun () ->
              totals.(dst) <- totals.(dst) + payload;
              counts.(dst) <- counts.(dst) + 1;
              if pending.(dst) > 0 && counts.(dst) >= sync_count pending.(dst) then begin
                let it' = pending.(dst) in
                pending.(dst) <- 0;
                next dst it' (Engine.now eng)
              end);
          if counts.(g) >= sync_count it then next g it t1 else pending.(g) <- it
        end
        else next g it t1)
  and next g it t = if it < iters then step g (it + 1) t in
  for g = 0 to ranks - 1 do
    Engine.register_state eng ~partition:(g + 1) (fun () ->
        let tot = totals.(g) and cnt = counts.(g) and pnd = pending.(g) in
        fun () ->
          totals.(g) <- tot;
          counts.(g) <- cnt;
          pending.(g) <- pnd);
    if iters > 0 then step g 1 Time.zero
  done;
  (eng, totals)

let ev_ring_output eng totals =
  (Time.to_ns (Engine.now eng), Engine.events_executed eng, Array.to_list totals)

let run_ev_ring_seq ?skew ~parts ~iters ~sync ~seed () =
  let eng, totals = build_ev_ring ?skew ~parts ~iters ~sync ~seed () in
  Engine.run eng;
  ev_ring_output eng totals

let optimistic_tests =
  [
    Alcotest.test_case "optimistic run matches sequential bit-for-bit" `Quick (fun () ->
        let seq = run_ev_ring_seq ~parts:5 ~iters:24 ~sync:6 ~seed:3 () in
        let eng, totals = build_ev_ring ~parts:5 ~iters:24 ~sync:6 ~seed:3 () in
        (match Engine.run_optimistic ~jobs:2 ~lookahead eng with
        | Engine.Optimistic { rounds; _ } -> check_bool "ran rounds" true (rounds > 0)
        | Engine.Windowed _ | Engine.Adaptive _ -> Alcotest.fail "fell back conservatively"
        | Engine.Sequential r -> Alcotest.fail ("unexpected fallback: " ^ r));
        check_bool "identical output" true (seq = ev_ring_output eng totals));
    Alcotest.test_case "skewed ring rolls back and still matches sequential" `Quick
      (fun () ->
        (* For a rollback the straggler's epoch must run past a fast rank's
           halo-arrival time: 8 iterations of extra cost must outweigh the
           fast epoch (~400 ns) plus one lookahead (1000 ns). *)
        let skew = 250 in
        let seq = run_ev_ring_seq ~skew ~parts:5 ~iters:40 ~sync:8 ~seed:7 () in
        let eng, totals = build_ev_ring ~skew ~parts:5 ~iters:40 ~sync:8 ~seed:7 () in
        (match Engine.run_optimistic ~jobs:2 ~lookahead eng with
        | Engine.Optimistic { rounds; rollbacks; _ } ->
          check_bool "ran rounds" true (rounds > 0);
          check_bool "rolled back at least once" true (rollbacks > 0);
          check_int "engine agrees on rollbacks" rollbacks (Engine.rollbacks eng)
        | Engine.Windowed _ | Engine.Adaptive _ -> Alcotest.fail "fell back conservatively"
        | Engine.Sequential r -> Alcotest.fail ("unexpected fallback: " ^ r));
        check_bool "identical output" true (seq = ev_ring_output eng totals));
    Alcotest.test_case "adaptive windows match sequential on the process ring" `Quick
      (fun () ->
        let seq = run_ring_seq ~parts:4 ~iters:6 ~seed:5 in
        let eng, totals = build_ring ~trace:(Trace.create ()) ~parts:4 ~iters:6 ~seed:5 () in
        (match Engine.run_adaptive ~jobs:2 ~lookahead eng with
        | Engine.Adaptive { windows; _ } -> check_bool "ran windows" true (windows > 0)
        | Engine.Windowed _ | Engine.Optimistic _ -> Alcotest.fail "wrong driver"
        | Engine.Sequential r -> Alcotest.fail ("unexpected fallback: " ^ r));
        check_bool "identical output" true (seq = ring_output eng totals));
    Alcotest.test_case "process models fall back to the windowed driver" `Quick (fun () ->
        let seq = run_ring_seq ~parts:4 ~iters:6 ~seed:9 in
        let eng, totals = build_ring ~trace:(Trace.create ()) ~parts:4 ~iters:6 ~seed:9 () in
        (match Engine.run_optimistic ~lookahead eng with
        | Engine.Windowed { windows; _ } -> check_bool "ran windows" true (windows > 0)
        | Engine.Optimistic _ -> Alcotest.fail "cannot checkpoint processes"
        | Engine.Adaptive _ -> Alcotest.fail "wrong driver"
        | Engine.Sequential r -> Alcotest.fail ("unexpected fallback: " ^ r));
        check_bool "identical output" true (seq = ring_output eng totals));
    Alcotest.test_case "no state providers means no speculation" `Quick (fun () ->
        let eng = Engine.create ~partitions:3 ~isolated:true () in
        let hits = ref 0 in
        Engine.post eng ~partition:1 ~at:(Time.ns 10) (fun () -> incr hits);
        Engine.post eng ~partition:2 ~at:(Time.ns 20) (fun () -> incr hits);
        (match Engine.run_optimistic ~lookahead eng with
        | Engine.Windowed _ | Engine.Sequential _ -> ()
        | Engine.Optimistic _ -> Alcotest.fail "speculated without checkpoint support"
        | Engine.Adaptive _ -> Alcotest.fail "wrong driver");
        check_int "both events ran" 2 !hits);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"optimistic and adaptive equal sequential for any config and worker count"
         ~count:30
         QCheck.(
           quad (int_range 2 5) (int_range 0 10) (int_range 1 4) small_int)
         (fun (parts, iters, sync, seed) ->
           let seq = run_ev_ring_seq ~parts ~iters ~sync ~seed () in
           let opt jobs =
             let eng, totals = build_ev_ring ~parts ~iters ~sync ~seed () in
             let (_ : Engine.outcome) = Engine.run_optimistic ~jobs ~lookahead eng in
             ev_ring_output eng totals
           in
           let adp =
             let eng, totals = build_ev_ring ~parts ~iters ~sync ~seed () in
             let (_ : Engine.outcome) = Engine.run_adaptive ~jobs:2 ~lookahead eng in
             ev_ring_output eng totals
           in
           seq = opt 1 && seq = opt 3 && seq = adp));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"gvt is monotone non-decreasing and bounded by the final clock" ~count:30
         QCheck.(
           quad (int_range 2 5) (int_range 1 10) (int_range 1 4) small_int)
         (fun (parts, iters, sync, seed) ->
           let eng, _ = build_ev_ring ~skew:40 ~parts ~iters ~sync ~seed () in
           let gvts = ref [] in
           let (_ : Engine.outcome) =
             Engine.run_optimistic ~jobs:2 ~on_gvt:(fun g -> gvts := g :: !gvts)
               ~lookahead eng
           in
           let seen = List.rev !gvts in
           let rec monotone = function
             | a :: (b :: _ as rest) -> Time.compare a b <= 0 && monotone rest
             | _ -> true
           in
           let final = Engine.now eng in
           seen <> []
           && monotone seen
           && List.for_all (fun g -> Time.compare g final <= 0) seen
           && Time.equal (Engine.last_gvt eng) (List.nth seen (List.length seen - 1))));
  ]

let () =
  Alcotest.run "engine"
    [
      ("time", time_tests @ time_props);
      ("heap", heap_tests @ heap_props);
      ("rng", rng_tests @ rng_props);
      ("stats", stats_tests @ stats_props);
      ("intervals", interval_tests @ interval_props);
      ("trace", trace_tests);
      ("engine", engine_tests);
      ("sync", sync_tests);
      ("partitions", partition_tests);
      ("optimistic", optimistic_tests);
    ]
