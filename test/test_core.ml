(* Tests for the CPU-Free execution model library: thread-block
   specialization, the halo signaling protocol, persistent launch, and the
   measurement harness. *)

module E = Cpufree_engine
module G = Cpufree_gpu
module Nv = Cpufree_comm.Nvshmem
module Core = Cpufree_core
module Specialize = Core.Specialize
module Proto = Core.Signal_proto
module Persistent = Core.Persistent
module Measure = Core.Measure
module Time = E.Time
module Engine = E.Engine

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_float msg = check (Alcotest.float 1e-9) msg

let with_machine ?(gpus = 2) f =
  let eng = Engine.create () in
  let ctx = G.Runtime.create eng ~num_gpus:gpus () in
  let (_ : Engine.process) = Engine.spawn eng ~name:"main" (fun () -> f eng ctx) in
  Engine.run eng;
  (eng, ctx)

(* --- Specialize --------------------------------------------------------- *)

let specialize_tests =
  [
    Alcotest.test_case "paper formula on a balanced domain" `Quick (fun () ->
        (* 108 TBs, boundary 2048 elems, inner 2044*2048: formula gives 0,
           clamped to 1 per side. *)
        let s = Specialize.split ~total_blocks:108 ~boundary_elems:2048 ~inner_elems:(2044 * 2048) in
        check_int "boundary" 1 s.Specialize.boundary_blocks;
        check_int "inner" 106 s.Specialize.inner_blocks);
    Alcotest.test_case "boundary-heavy domain gets more blocks" `Quick (fun () ->
        (* inner = 2 planes, boundary = 1 plane each: thirds. *)
        (* 99 * 1000 / 4000 = 24.75, rounded up to 25 per side. *)
        let s = Specialize.split ~total_blocks:99 ~boundary_elems:1000 ~inner_elems:2000 in
        check_int "boundary" 25 s.Specialize.boundary_blocks;
        check_int "inner" 49 s.Specialize.inner_blocks);
    Alcotest.test_case "inner always keeps at least one block" `Quick (fun () ->
        let s = Specialize.split ~total_blocks:3 ~boundary_elems:1_000_000 ~inner_elems:0 in
        check_int "boundary" 1 s.Specialize.boundary_blocks;
        check_int "inner" 1 s.Specialize.inner_blocks);
    Alcotest.test_case "fractions are consistent" `Quick (fun () ->
        let s = Specialize.split ~total_blocks:108 ~boundary_elems:4096 ~inner_elems:100_000 in
        check_float "sum"
          1.0
          ((2.0 *. Specialize.boundary_fraction s) +. Specialize.inner_fraction s));
    Alcotest.test_case "too few blocks rejected" `Quick (fun () ->
        Alcotest.check_raises "small"
          (Invalid_argument "Specialize.split: need at least 3 thread blocks") (fun () ->
            ignore (Specialize.split ~total_blocks:2 ~boundary_elems:1 ~inner_elems:1)));
    Alcotest.test_case "no_boundary gives everything to inner" `Quick (fun () ->
        let s = Specialize.no_boundary ~total_blocks:108 in
        check_int "boundary" 0 s.Specialize.boundary_blocks;
        check_int "inner" 108 s.Specialize.inner_blocks);
  ]

let specialize_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"split partitions all blocks" ~count:300
         QCheck.(triple (int_range 3 512) (int_range 0 100_000) (int_range 0 10_000_000))
         (fun (total, boundary, inner) ->
           let s = Specialize.split ~total_blocks:total ~boundary_elems:boundary
               ~inner_elems:inner
           in
           (2 * s.Specialize.boundary_blocks) + s.Specialize.inner_blocks = total
           && s.Specialize.boundary_blocks >= 1
           && s.Specialize.inner_blocks >= 1));
  ]

(* --- Signal protocol ----------------------------------------------------- *)

let proto_tests =
  [
    Alcotest.test_case "chain neighbours" `Quick (fun () ->
        let _ =
          with_machine ~gpus:3 (fun _ ctx ->
              let nv = Nv.init ctx in
              let p = Proto.create nv ~label:"h" in
              check_bool "pe0 up" true (Proto.neighbor p ~pe:0 Proto.Up = None);
              check_bool "pe0 down" true (Proto.neighbor p ~pe:0 Proto.Down = Some 1);
              check_bool "pe2 down" true (Proto.neighbor p ~pe:2 Proto.Down = None);
              check_bool "pe1 up" true (Proto.neighbor p ~pe:1 Proto.Up = Some 0))
        in
        ());
    Alcotest.test_case "iteration 1 needs no signal" `Quick (fun () ->
        let eng, _ =
          with_machine ~gpus:2 (fun _ ctx ->
              let nv = Nv.init ctx in
              let p = Proto.create nv ~label:"h" in
              Proto.wait_halo p ~pe:0 ~dir:Proto.Down ~iter:1)
        in
        check_int "instant" 0 (Time.to_ns (Engine.now eng)));
    Alcotest.test_case "boundary put unblocks the next iteration" `Quick (fun () ->
        let _ =
          with_machine ~gpus:2 (fun eng ctx ->
              let nv = Nv.init ctx in
              let p = Proto.create nv ~label:"h" in
              let s = Nv.sym_malloc nv ~label:"x" 8 in
              let (_ : Engine.process) =
                Engine.spawn eng ~name:"pe0" (fun () ->
                    G.Buffer.fill (Nv.local s ~pe:0) 3.0;
                    Proto.put_boundary p ~from_pe:0 ~dir:Proto.Down ~src:(Nv.local s ~pe:0)
                      ~src_pos:0 ~dst:s ~dst_pos:4 ~len:4 ~iter:1)
              in
              (* PE 1 waits for the halo of iteration 2 (sent at iteration 1). *)
              Proto.wait_halo p ~pe:1 ~dir:Proto.Up ~iter:2;
              check_float "halo data" 3.0 (G.Buffer.get (Nv.local s ~pe:1) 4);
              check_int "flag" 1 (Proto.inbound_value p ~pe:1 ~dir:Proto.Up))
        in
        ());
    Alcotest.test_case "puts at the domain edge are no-ops" `Quick (fun () ->
        let _ =
          with_machine ~gpus:2 (fun _ ctx ->
              let nv = Nv.init ctx in
              let p = Proto.create nv ~label:"h" in
              let s = Nv.sym_malloc nv ~label:"x" 4 in
              (* PE 0 has no Up neighbour: the put must be silently skipped. *)
              Proto.put_boundary p ~from_pe:0 ~dir:Proto.Up ~src:(Nv.local s ~pe:0) ~src_pos:0
                ~dst:s ~dst_pos:0 ~len:4 ~iter:1;
              Nv.quiet nv ~pe:0)
        in
        ());
    Alcotest.test_case "signal_only raises the flag without payload" `Quick (fun () ->
        let _ =
          with_machine ~gpus:2 (fun eng ctx ->
              let nv = Nv.init ctx in
              let p = Proto.create nv ~label:"h" in
              let (_ : Engine.process) =
                Engine.spawn eng ~name:"pe1" (fun () ->
                    Proto.signal_only p ~from_pe:1 ~dir:Proto.Up ~iter:5)
              in
              Proto.wait_halo p ~pe:0 ~dir:Proto.Down ~iter:6)
        in
        ());
  ]

let proto_failure_tests =
  [
    Alcotest.test_case "a lost signal surfaces as a named deadlock" `Quick (fun () ->
        (* PE 1 waits for a halo PE 0 never sends: the engine's deadlock
           report must name the stuck process and the flag it waits on. *)
        let eng = Engine.create () in
        let ctx = G.Runtime.create eng ~num_gpus:2 () in
        let nv = Nv.init ctx in
        let p = Proto.create nv ~label:"halo" in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"pe1.comm_top" (fun () ->
              Proto.wait_halo p ~pe:1 ~dir:Proto.Up ~iter:2)
        in
        match Engine.run eng with
        | () -> Alcotest.fail "expected deadlock"
        | exception Engine.Deadlock names ->
          check_int "one stuck" 1 (List.length names);
          let d = List.hd names in
          check_bool "names the role" true (Astring.String.is_infix ~affix:"pe1.comm_top" d);
          check_bool "names the flag" true (Astring.String.is_infix ~affix:"from_above" d));
    Alcotest.test_case "a signal for the wrong iteration does not unblock" `Quick (fun () ->
        let eng = Engine.create () in
        let ctx = G.Runtime.create eng ~num_gpus:2 () in
        let nv = Nv.init ctx in
        let p = Proto.create nv ~label:"halo" in
        let s = Nv.sym_malloc nv ~label:"x" 4 in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"pe0" (fun () ->
              (* Sends iteration 1's halo only. *)
              Proto.put_boundary p ~from_pe:0 ~dir:Proto.Down ~src:(Nv.local s ~pe:0)
                ~src_pos:0 ~dst:s ~dst_pos:0 ~len:4 ~iter:1)
        in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"pe1" (fun () ->
              (* Needs iteration 3's halo (signal value >= 2). *)
              Proto.wait_halo p ~pe:1 ~dir:Proto.Up ~iter:3)
        in
        match Engine.run eng with
        | () -> Alcotest.fail "expected deadlock"
        | exception Engine.Deadlock _ -> ());
  ]

(* --- Persistent launch --------------------------------------------------- *)

let persistent_tests =
  [
    Alcotest.test_case "run_all launches one kernel per GPU" `Quick (fun () ->
        let launched = ref [] in
        let _ =
          with_machine ~gpus:4 (fun _ ctx ->
              Persistent.run_all ctx ~name:"k" ~blocks:108 ~threads_per_block:1024
                ~roles:(fun pe -> [ ("only", fun _ -> launched := pe :: !launched) ]))
        in
        check (Alcotest.list Alcotest.int) "all devices" [ 0; 1; 2; 3 ]
          (List.sort Int.compare !launched));
    Alcotest.test_case "roles on one device share their grid" `Quick (fun () ->
        let met = ref [] in
        let _ =
          with_machine ~gpus:1 (fun eng ctx ->
              Persistent.run_all ctx ~name:"k" ~blocks:16 ~threads_per_block:1024
                ~roles:(fun _ ->
                  let role tag grid =
                    Engine.delay eng (Time.ns (100 * (tag + 1)));
                    G.Coop.sync grid;
                    met := Time.to_ns (Engine.now eng) :: !met
                  in
                  [ ("a", role 0); ("b", role 1) ]))
        in
        match !met with
        | [ a; b ] -> check_int "met at barrier" a b
        | _ -> Alcotest.fail "expected two roles");
    Alcotest.test_case "oversubscription raises through run_all" `Quick (fun () ->
        let eng = Engine.create () in
        let ctx = G.Runtime.create eng ~num_gpus:1 () in
        let (_ : Engine.process) =
          Engine.spawn eng ~name:"main" (fun () ->
              Persistent.run_all ctx ~name:"k" ~blocks:4096 ~threads_per_block:1024
                ~roles:(fun _ -> [ ("r", fun _ -> ()) ]))
        in
        (match Engine.run eng with
        | () -> Alcotest.fail "expected Coop_launch_error"
        | exception G.Runtime.Coop_launch_error _ -> ()));
    Alcotest.test_case "max_blocks equals the co-residency limit" `Quick (fun () ->
        let eng = Engine.create () in
        let ctx = G.Runtime.create eng ~num_gpus:1 () in
        check_int "limit" 108 (Persistent.max_blocks ctx));
  ]

(* --- Measure -------------------------------------------------------------- *)

let measure_tests =
  [
    Alcotest.test_case "run reports simulated totals" `Quick (fun () ->
        let r =
          Measure.run_env ~label:"x" ~gpus:1 ~iterations:10 (fun ctx ->
              Engine.delay (G.Runtime.engine ctx) (Time.us 100))
        in
        check_int "total" 100_000 (Time.to_ns r.Measure.total);
        check_int "per iter" 10_000 (Time.to_ns r.Measure.per_iter);
        check_int "gpus" 1 r.Measure.gpus);
    Alcotest.test_case "traced run exposes the trace" `Quick (fun () ->
        let r, trace =
          Measure.run_traced_env ~label:"x" ~gpus:2 ~iterations:1 (fun ctx ->
              let net = G.Runtime.net ctx in
              G.Interconnect.transfer net ~src:(G.Interconnect.Gpu 0)
                ~dst:(G.Interconnect.Gpu 1) ~initiator:G.Interconnect.By_device ~bytes:3_000
                ~trace_lane:"gpu0.comm" ())
        in
        check_bool "comm recorded" true Time.(r.Measure.comm > Time.zero);
        check_bool "spans" true (E.Trace.spans trace <> []);
        check_int "bytes" 3_000 r.Measure.bytes_moved);
    Alcotest.test_case "speedup formula matches the paper" `Quick (fun () ->
        let mk total =
          Measure.run_env ~label:"x" ~gpus:1 ~iterations:1 (fun ctx ->
              Engine.delay (G.Runtime.engine ctx) total)
        in
        let baseline = mk (Time.us 100) and ours = mk (Time.us 40) in
        check_float "60%" 60.0 (Measure.speedup_pct ~baseline ~ours));
    Alcotest.test_case "best_of keeps the fastest run" `Quick (fun () ->
        let calls = ref 0 in
        let f () =
          incr calls;
          Measure.run_env ~label:"x" ~gpus:1 ~iterations:1 (fun ctx ->
              Engine.delay (G.Runtime.engine ctx) (Time.us !calls))
        in
        let best = Measure.best_of ~runs:5 f in
        check_int "five runs" 5 !calls;
        check_int "fastest kept" 1_000 (Time.to_ns best.Measure.total));
    Alcotest.test_case "pp_table renders all rows" `Quick (fun () ->
        let r =
          Measure.run_env ~label:"row-one" ~gpus:1 ~iterations:1 (fun _ -> ())
        in
        let s = Format.asprintf "%a" (fun fmt -> Measure.pp_table fmt ~header:"H") [ r; r ] in
        check_bool "header" true (Astring.String.is_infix ~affix:"== H ==" s);
        check_bool "row" true (Astring.String.is_infix ~affix:"row-one" s));
  ]

let determinism_tests =
  [
    Alcotest.test_case "identical runs produce identical simulated times" `Quick (fun () ->
        let run () =
          Measure.run_env ~label:"d" ~gpus:4 ~iterations:8 (fun ctx ->
              let nv = Nv.init ctx in
              let p = Proto.create nv ~label:"h" in
              let s = Nv.sym_malloc nv ~label:"x" 64 in
              G.Host.parallel_join ctx ~name:"w" (fun pe ->
                  for t = 1 to 8 do
                    Proto.wait_halo p ~pe ~dir:Proto.Up ~iter:t;
                    Proto.put_boundary p ~from_pe:pe ~dir:Proto.Down ~src:(Nv.local s ~pe)
                      ~src_pos:0 ~dst:s ~dst_pos:32 ~len:16 ~iter:t
                  done;
                  Nv.quiet nv ~pe))
        in
        let a = run () and b = run () in
        check_int "same total" (Time.to_ns a.Measure.total) (Time.to_ns b.Measure.total);
        check_int "same bytes" a.Measure.bytes_moved b.Measure.bytes_moved);
    Alcotest.test_case "a thousand processes drain deterministically" `Quick (fun () ->
        let run () =
          let eng = Engine.create () in
          let acc = ref 0 in
          for i = 1 to 1000 do
            let (_ : Engine.process) =
              Engine.spawn eng ~name:(string_of_int i) (fun () ->
                  Engine.delay eng (Time.ns ((i * 37) mod 211));
                  acc := (!acc * 31) + i)
            in
            ()
          done;
          Engine.run eng;
          (!acc, Time.to_ns (Engine.now eng))
        in
        let a = run () and b = run () in
        check_bool "identical" true (a = b));
  ]

(* --- Parallel -------------------------------------------------------------- *)

module Parallel = Core.Parallel

exception Boom of int

let parallel_tests =
  [
    Alcotest.test_case "empty list" `Quick (fun () ->
        check (Alcotest.list Alcotest.int) "empty" [] (Parallel.map ~jobs:4 (fun x -> x) []));
    Alcotest.test_case "sequential fallback at one job" `Quick (fun () ->
        check (Alcotest.list Alcotest.int) "same" [ 2; 4; 6 ]
          (Parallel.map ~jobs:1 (fun x -> 2 * x) [ 1; 2; 3 ]));
    Alcotest.test_case "pool larger than the work list" `Quick (fun () ->
        check (Alcotest.list Alcotest.int) "same" [ 1 ] (Parallel.map ~jobs:16 succ [ 0 ]));
    Alcotest.test_case "lowest-index exception wins" `Quick (fun () ->
        let f x = if x >= 10 then raise (Boom x) else x in
        (match Parallel.map ~jobs:4 f [ 1; 12; 3; 11; 5 ] with
        | _ -> Alcotest.fail "expected Boom"
        | exception Boom x -> check_int "first failing index" 12 x));
    Alcotest.test_case "map_reduce folds in input order" `Quick (fun () ->
        let s =
          Parallel.map_reduce ~jobs:4 ~map:string_of_int
            ~reduce:(fun acc x -> acc ^ x)
            ~init:"" [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
        in
        check Alcotest.string "ordered" "123456789" s);
    Alcotest.test_case "parallel simulations match sequential results" `Quick (fun () ->
        (* Each scenario builds a private engine; fanning them across
           domains must not change any simulated time. *)
        let scenario gpus =
          Measure.run_env ~label:"p" ~gpus ~iterations:4 (fun ctx ->
              let eng = G.Runtime.engine ctx in
              G.Host.parallel_join ctx ~name:"w" (fun pe ->
                  for _ = 1 to 4 do
                    Engine.delay eng (Time.ns (100 * (pe + 1)))
                  done))
        in
        let inputs = [ 1; 2; 4; 8; 8; 4; 2; 1 ] in
        let seq = List.map scenario inputs in
        let par = Parallel.map ~jobs:4 scenario inputs in
        List.iter2
          (fun (a : Measure.result) (b : Measure.result) ->
            check_int "total" (Time.to_ns a.Measure.total) (Time.to_ns b.Measure.total))
          seq par);
  ]

let parallel_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"map equals List.map for any pool size" ~count:100
         QCheck.(pair (int_range 1 8) (list small_int))
         (fun (jobs, xs) ->
           Parallel.map ~jobs (fun x -> (x * 37) land 255) xs
           = List.map (fun x -> (x * 37) land 255) xs));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"map_reduce equals fold of List.map" ~count:100
         QCheck.(pair (int_range 1 8) (list (int_bound 1000)))
         (fun (jobs, xs) ->
           Parallel.map_reduce ~jobs ~map:succ ~reduce:( + ) ~init:0 xs
           = List.fold_left ( + ) 0 (List.map succ xs)));
  ]

(* --- Json ------------------------------------------------------------------ *)

module Json = Core.Json

let json_tests =
  [
    Alcotest.test_case "compact scalars" `Quick (fun () ->
        check Alcotest.string "null" "null" (Json.to_string ~indent:0 Json.Null);
        check Alcotest.string "bool" "true" (Json.to_string ~indent:0 (Json.Bool true));
        check Alcotest.string "int" "-3" (Json.to_string ~indent:0 (Json.Int (-3)));
        check Alcotest.string "whole float" "2.0" (Json.to_string ~indent:0 (Json.Float 2.0));
        check Alcotest.string "frac float" "2.5" (Json.to_string ~indent:0 (Json.Float 2.5)));
    Alcotest.test_case "string escaping" `Quick (fun () ->
        check Alcotest.string "quotes" "\"a\\\"b\\\\c\\nd\""
          (Json.to_string ~indent:0 (Json.String "a\"b\\c\nd")));
    Alcotest.test_case "compact containers" `Quick (fun () ->
        check Alcotest.string "obj"
          "{\"xs\":[1,2],\"e\":{}}"
          (Json.to_string ~indent:0
             (Json.Obj [ ("xs", Json.List [ Json.Int 1; Json.Int 2 ]); ("e", Json.Obj []) ])));
    Alcotest.test_case "indented output nests" `Quick (fun () ->
        let s = Json.to_string ~indent:2 (Json.Obj [ ("a", Json.List [ Json.Int 1 ]) ]) in
        check_bool "multiline" true (String.contains s '\n');
        check_bool "indented" true (Astring.String.is_infix ~affix:"\n  \"a\"" s));
    Alcotest.test_case "non-finite floats become null" `Quick (fun () ->
        check Alcotest.string "nan" "null" (Json.to_string ~indent:0 (Json.Float Float.nan));
        check Alcotest.string "inf" "null"
          (Json.to_string ~indent:0 (Json.Float Float.infinity)));
  ]

(* --- PDES mode and the microbenchmark ----------------------------------- *)

module Microbench = Core.Microbench
module S = Cpufree_stencil

let with_pdes value f =
  Unix.putenv "CPUFREE_PDES" value;
  Fun.protect ~finally:(fun () -> Unix.putenv "CPUFREE_PDES" "") f

let small_micro =
  { Microbench.default with Microbench.gpus = 4; iters = 12; ticks_per_iter = 2; traced = true }

let pdes_tests =
  [
    Alcotest.test_case "pdes_mode parses the CPUFREE_PDES knob" `Quick (fun () ->
        let mode v = with_pdes v Measure.pdes_mode in
        check_bool "empty is seq" true (mode "" = `Seq);
        check_bool "seq" true (mode "seq" = `Seq);
        check_bool "sequential" true (mode "Sequential" = `Seq);
        check_bool "windowed" true (mode "windowed" = `Windowed);
        check_bool "pdes" true (mode "PDES" = `Windowed);
        check_bool "adaptive" true (mode "adaptive" = `Adaptive);
        check_bool "optimistic" true (mode "optimistic" = `Optimistic);
        check_bool "timewarp" true (mode "TimeWarp" = `Optimistic);
        Alcotest.check_raises "garbage rejected with the valid modes listed"
          (Invalid_argument
             "CPUFREE_PDES=\"turbo\": valid modes are \"seq\", \"sequential\", \
              \"windowed\", \"pdes\", \"adaptive\", \"optimistic\", \"timewarp\"")
          (fun () -> ignore (mode "turbo")));
    Alcotest.test_case "windowed env is bit-identical on a figure scenario" `Quick (fun () ->
        let problem =
          S.Problem.make (S.Problem.D2 { nx = 64; ny = 64 }) ~iterations:3
        in
        let run () = S.Harness.run_traced_env S.Variants.Nvshmem problem ~gpus:2 in
        let r_seq, tr_seq = with_pdes "seq" run in
        let r_win, tr_win = with_pdes "windowed" run in
        check_bool "results identical" true (r_seq = r_win);
        check_bool "traces identical" true
          (E.Trace.sorted_spans tr_seq = E.Trace.sorted_spans tr_win));
    Alcotest.test_case "adaptive and optimistic envs are bit-identical on a figure scenario"
      `Quick (fun () ->
        let problem =
          S.Problem.make (S.Problem.D2 { nx = 64; ny = 64 }) ~iterations:3
        in
        let run () = S.Harness.run_traced_env S.Variants.Nvshmem problem ~gpus:2 in
        let r_seq, tr_seq = with_pdes "seq" run in
        let r_adp, tr_adp = with_pdes "adaptive" run in
        let r_opt, tr_opt = with_pdes "optimistic" run in
        check_bool "adaptive results identical" true (r_seq = r_adp);
        check_bool "optimistic results identical" true (r_seq = r_opt);
        check_bool "adaptive traces identical" true
          (E.Trace.sorted_spans tr_seq = E.Trace.sorted_spans tr_adp);
        check_bool "optimistic traces identical" true
          (E.Trace.sorted_spans tr_seq = E.Trace.sorted_spans tr_opt));
    Alcotest.test_case "microbench windowed output equals sequential" `Quick (fun () ->
        let seq = Microbench.run_seq small_micro in
        let win = Microbench.run_windowed ~jobs:2 small_micro in
        (match win.Microbench.outcome with
        | Engine.Windowed { windows; _ } -> check_bool "ran windows" true (windows > 0)
        | Engine.Sequential r -> Alcotest.fail ("unexpected fallback: " ^ r)
        | Engine.Adaptive _ | Engine.Optimistic _ -> Alcotest.fail "wrong driver");
        check_bool "equal output" true
          (Microbench.equal_output seq.Microbench.out win.Microbench.out);
        check_bool "spans recorded" true (seq.Microbench.out.Microbench.spans <> []));
    Alcotest.test_case "microbench shift pattern agrees across drivers" `Quick (fun () ->
        let cfg = { small_micro with Microbench.pattern = Microbench.Shift 2; gpus = 5 } in
        let seq = Microbench.run_seq cfg in
        let win = Microbench.run_windowed ~jobs:3 cfg in
        check_bool "equal output" true
          (Microbench.equal_output seq.Microbench.out win.Microbench.out));
    Alcotest.test_case "zero-lookahead arch falls back to sequential" `Quick (fun () ->
        let free_signal =
          {
            G.Arch.a100_hgx with
            G.Arch.nvlink_latency = Time.zero;
            gpu_initiated_latency = Time.zero;
          }
        in
        let cfg = { small_micro with Microbench.arch = free_signal } in
        let seq = Microbench.run_seq cfg in
        let win = Microbench.run_windowed ~jobs:2 cfg in
        (match win.Microbench.outcome with
        | Engine.Sequential reason ->
          check_bool "reason mentions lookahead" true
            (Astring.String.is_infix ~affix:"lookahead" reason)
        | Engine.Windowed _ | Engine.Adaptive _ | Engine.Optimistic _ ->
          Alcotest.fail "expected sequential fallback");
        check_bool "fallback output identical" true
          (Microbench.equal_output seq.Microbench.out win.Microbench.out));
    Alcotest.test_case "event model is byte-identical across all four modes" `Quick
      (fun () ->
        let cfg = { small_micro with Microbench.sync_every = 4; skew_ns = 120 } in
        let seq = Microbench.run_events ~mode:`Seq cfg in
        let modes =
          [
            Microbench.run_events ~jobs:1 ~mode:`Windowed cfg;
            Microbench.run_events ~jobs:3 ~mode:`Windowed cfg;
            Microbench.run_events ~jobs:1 ~mode:`Adaptive cfg;
            Microbench.run_events ~jobs:1 ~mode:`Optimistic cfg;
            Microbench.run_events ~jobs:3 ~mode:`Optimistic cfg;
          ]
        in
        List.iter
          (fun r ->
            check_bool (r.Microbench.label ^ " equal output") true
              (Microbench.equal_output seq.Microbench.out r.Microbench.out))
          modes;
        let opt = List.nth modes 4 in
        match opt.Microbench.outcome with
        | Engine.Optimistic { rounds; _ } ->
          check_bool "genuinely speculated" true (rounds > 0)
        | Engine.Windowed _ | Engine.Adaptive _ -> Alcotest.fail "fell back conservatively"
        | Engine.Sequential r -> Alcotest.fail ("unexpected fallback: " ^ r));
    Alcotest.test_case "process model honestly falls back under optimistic" `Quick
      (fun () ->
        let seq = Microbench.run_seq small_micro in
        let opt = Microbench.run_procs ~jobs:2 ~mode:`Optimistic small_micro in
        (match opt.Microbench.outcome with
        | Engine.Windowed { windows; _ } -> check_bool "ran windows" true (windows > 0)
        | Engine.Optimistic _ -> Alcotest.fail "cannot checkpoint processes"
        | Engine.Adaptive _ -> Alcotest.fail "wrong driver"
        | Engine.Sequential r -> Alcotest.fail ("unexpected fallback: " ^ r));
        check_bool "equal output" true
          (Microbench.equal_output seq.Microbench.out opt.Microbench.out));
  ]

let () =
  Alcotest.run "core"
    [
      ("specialize", specialize_tests @ specialize_props);
      ("signal_proto", proto_tests @ proto_failure_tests);
      ("persistent", persistent_tests);
      ("measure", measure_tests);
      ("determinism", determinism_tests);
      ("parallel", parallel_tests @ parallel_props);
      ("json", json_tests);
      ("pdes", pdes_tests);
    ]
