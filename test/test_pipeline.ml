(* End-to-end compiler pipeline tests: full compile-and-run of both arms on
   the simulated machine, numerical verification against the sequential
   references, emitted-code content checks, and performance-shape checks
   mirroring the paper's §6.2 claims. *)

module E = Cpufree_engine
module D = Cpufree_dace
module Pipeline = D.Pipeline
module Programs = D.Programs
module Codegen = D.Codegen
module Measure = Cpufree_core.Measure
module Time = E.Time

let check = Alcotest.check
let check_bool = check Alcotest.bool
let contains affix s = Astring.String.is_infix ~affix s

let app1d = Pipeline.Jacobi1d { Programs.n_global = 64; tsteps = 4 }
let app2d = Pipeline.Jacobi2d { Programs.nx_global = 16; ny_global = 16; tsteps = 3 }
let app3d = Pipeline.Heat3d { Programs.nx3 = 6; ny3 = 6; nz3 = 16; tsteps3 = 3 }

(* --- numerical verification matrix ---------------------------------------- *)

let verify_case app arm gpus =
  let name =
    Printf.sprintf "%s %s gpus=%d" (Pipeline.app_name app) (Pipeline.arm_name arm) gpus
  in
  Alcotest.test_case name `Quick (fun () ->
      match Pipeline.verify_env app arm ~gpus with
      | Ok err -> check_bool "tiny error" true (err <= 1e-9)
      | Error m -> Alcotest.fail m)

let verification_tests =
  List.concat_map
    (fun app ->
      List.concat_map
        (fun arm -> List.map (fun g -> verify_case app arm g) [ 1; 2; 4; 8 ])
        [ Pipeline.Baseline_mpi; Pipeline.Cpu_free ])
    [ app1d; app2d; app3d ]

(* --- references ------------------------------------------------------------- *)

let reference_tests =
  [
    Alcotest.test_case "1D reference smooths the interior" `Quick (fun () ->
        let cfg = { Programs.n_global = 32; tsteps = 0 } in
        let r0 = Programs.reference1d cfg in
        let r9 = Programs.reference1d { cfg with Programs.tsteps = 9 } in
        let range a =
          let interior = Array.sub a 1 32 in
          Array.fold_left Float.max neg_infinity interior
          -. Array.fold_left Float.min infinity interior
        in
        check_bool "smoother" true (range r9 < range r0));
    Alcotest.test_case "2D reference keeps the fixed shell" `Quick (fun () ->
        let cfg = { Programs.nx_global = 8; ny_global = 8; tsteps = 5 } in
        let r = Programs.reference2d cfg in
        check (Alcotest.float 1e-12) "corner" (D.Exec.init_value 0) r.(0));
    Alcotest.test_case "3D reference smooths the interior" `Quick (fun () ->
        let cfg = { Programs.nx3 = 6; ny3 = 6; nz3 = 6; tsteps3 = 0 } in
        let range a =
          let w = 8 in
          let pw = 64 in
          let lo = ref infinity and hi = ref neg_infinity in
          for z = 1 to 6 do
            for y = 1 to 6 do
              for x = 1 to 6 do
                let v = a.((z * pw) + (y * w) + x) in
                if v < !lo then lo := v;
                if v > !hi then hi := v
              done
            done
          done;
          !hi -. !lo
        in
        check_bool "smoother" true
          (range (Programs.reference3d { cfg with Programs.tsteps3 = 10 })
          < range (Programs.reference3d cfg)));
  ]

(* --- emitted code ------------------------------------------------------------ *)

let emitted_baseline app =
  Codegen.emit_baseline (Pipeline.compile_sdfg app Pipeline.Baseline_mpi ~gpus:8)

let emitted_persistent app =
  let sdfg = Pipeline.compile_sdfg app Pipeline.Cpu_free ~gpus:8 in
  match D.Persistent_fusion.apply sdfg with
  | Ok p -> Codegen.emit_persistent p
  | Error e -> Alcotest.fail e

let codegen_tests =
  [
    Alcotest.test_case "baseline 1D emits MPI calls and stream syncs" `Quick (fun () ->
        let code = emitted_baseline app1d in
        check_bool "isend" true (contains "MPI_Isend" code);
        check_bool "irecv" true (contains "MPI_Irecv" code);
        check_bool "waitall" true (contains "MPI_Waitall" code);
        check_bool "sync before comm" true (contains "cudaStreamSynchronize" code);
        check_bool "loop" true (contains "for (int t = 1;" code));
    Alcotest.test_case "baseline 2D emits Type_vector for strided columns" `Quick (fun () ->
        let code = emitted_baseline app2d in
        check_bool "type vector" true (contains "MPI_Type_vector" code));
    Alcotest.test_case "persistent 1D emits p + signal ops in a cooperative kernel" `Quick
      (fun () ->
        let code = emitted_persistent app1d in
        check_bool "grid sync" true (contains "grid.sync();" code);
        check_bool "cooperative" true (contains "cudaLaunchCooperativeKernel" code);
        check_bool "single-element put" true (contains "nvshmem_float_p" code);
        check_bool "signal op" true (contains "nvshmem_signal_op" code);
        check_bool "signal wait" true (contains "nvshmem_signal_wait_until" code);
        check_bool "one host sync only" true (contains "the only host synchronization" code));
    Alcotest.test_case "persistent 2D emits putmem_signal for rows, iput+quiet for columns"
      `Quick (fun () ->
        let code = emitted_persistent app2d in
        check_bool "rows" true (contains "nvshmemx_putmem_signal_nbi_block" code);
        check_bool "columns" true (contains "nvshmem_float_iput" code);
        check_bool "ordering" true (contains "nvshmem_quiet" code));
    Alcotest.test_case "persistent heat3d uses whole-plane putmem_signal" `Quick (fun () ->
        let code = emitted_persistent app3d in
        check_bool "contiguous planes" true (contains "nvshmemx_putmem_signal_nbi_block" code);
        check_bool "no strided ops" false (contains "nvshmem_float_iput" code));
    Alcotest.test_case "persistent code contains no MPI and no discrete launches" `Quick
      (fun () ->
        let code = emitted_persistent app2d in
        check_bool "no mpi" false (contains "MPI_Isend" code);
        check_bool "no stream sync in kernel" false (contains "cudaStreamSynchronize" code));
  ]

(* --- performance shape (§6.2.3) ---------------------------------------------- *)

let bench1d = Pipeline.Jacobi1d { Programs.n_global = 1 lsl 23; tsteps = 10 }
let bench2d = Pipeline.Jacobi2d { Programs.nx_global = 2048; ny_global = 2048; tsteps = 10 }

let shape_tests =
  [
    Alcotest.test_case "CPU-Free beats the DaCe baseline at 8 GPUs (1D)" `Slow (fun () ->
        let b = Pipeline.run_env bench1d Pipeline.Baseline_mpi ~gpus:8 in
        let f = Pipeline.run_env bench1d Pipeline.Cpu_free ~gpus:8 in
        check_bool "faster" true Time.(f.Measure.total < b.Measure.total));
    Alcotest.test_case "CPU-Free wins even bigger on strided 2D" `Slow (fun () ->
        let b1 = Pipeline.run_env bench1d Pipeline.Baseline_mpi ~gpus:8 in
        let f1 = Pipeline.run_env bench1d Pipeline.Cpu_free ~gpus:8 in
        let b2 = Pipeline.run_env bench2d Pipeline.Baseline_mpi ~gpus:8 in
        let f2 = Pipeline.run_env bench2d Pipeline.Cpu_free ~gpus:8 in
        let s1 = Measure.speedup_pct ~baseline:b1 ~ours:f1 in
        let s2 = Measure.speedup_pct ~baseline:b2 ~ours:f2 in
        check_bool "2D speedup larger" true (s2 > s1));
    Alcotest.test_case "baseline 2D is communication-dominated" `Slow (fun () ->
        let r, trace = Pipeline.run_traced_env bench2d Pipeline.Baseline_mpi ~gpus:8 in
        let frac = Cpufree_comm.Metrics.comm_fraction trace ~total:r.Measure.total in
        ignore frac;
        (* Host-side control dominates; device communication alone is a lower
           bound. The key observable: poor overlap. *)
        check_bool "little overlap" true (r.Measure.overlap < 0.5));
    Alcotest.test_case "relaxed barriers are at least as fast as naive" `Slow (fun () ->
        let run relax =
          let built = Pipeline.compile ~relax bench1d Pipeline.Cpu_free ~gpus:4 in
          Measure.run_env ~label:"x" ~gpus:4 ~iterations:10 built.D.Exec.program
        in
        let relaxed = run true and naive = run false in
        check_bool "relax helps" true Time.(relaxed.Measure.total <= naive.Measure.total));
    Alcotest.test_case "frontend and compiled SDFG both validate" `Quick (fun () ->
        List.iter
          (fun app ->
            List.iter
              (fun arm ->
                D.Validate.check_exn (Pipeline.frontend app arm ~gpus:4);
                ignore (Pipeline.compile_sdfg app arm ~gpus:4))
              [ Pipeline.Baseline_mpi; Pipeline.Cpu_free ])
          [ app1d; app2d ]);
  ]

(* --- §5.4 future work: thread-block-specialized scheduling ---------------- *)

let specialize_tests =
  [
    Alcotest.test_case "specialized 1D matches the reference on all GPU counts" `Quick
      (fun () ->
        List.iter
          (fun gpus ->
            match Pipeline.verify_env ~specialize_tb:true app1d Pipeline.Cpu_free ~gpus with
            | Ok _ -> ()
            | Error m -> Alcotest.fail (Printf.sprintf "gpus=%d: %s" gpus m))
          [ 1; 2; 4; 8 ]);
    Alcotest.test_case "specialized 2D matches the reference on all GPU counts" `Quick
      (fun () ->
        List.iter
          (fun gpus ->
            match Pipeline.verify_env ~specialize_tb:true app2d Pipeline.Cpu_free ~gpus with
            | Ok _ -> ()
            | Error m -> Alcotest.fail (Printf.sprintf "gpus=%d: %s" gpus m))
          [ 1; 2; 4; 8 ]);
    Alcotest.test_case "specialization fuses every exchange/compute pair" `Quick (fun () ->
        let sdfg = Pipeline.compile_sdfg app2d Pipeline.Cpu_free ~gpus:4 in
        match D.Persistent_fusion.apply sdfg with
        | Error e -> Alcotest.fail e
        | Ok p ->
          let p', fused = D.Persistent_fusion.specialize_tb p in
          check Alcotest.int "two pairs" 2 fused;
          (* Fewer states and thus fewer per-iteration barriers. *)
          check_bool "fewer barriers" true
            (D.Persistent_fusion.barrier_count p' < D.Persistent_fusion.barrier_count p));
    Alcotest.test_case "specialized schedule overlaps and is faster" `Slow (fun () ->
        let big =
          Pipeline.Jacobi2d { Programs.nx_global = 4096; ny_global = 4096; tsteps = 20 }
        in
        let run sp =
          let b = Pipeline.compile ~specialize_tb:sp big Pipeline.Cpu_free ~gpus:4 in
          Measure.run_env ~label:"x" ~gpus:4 ~iterations:20 b.D.Exec.program
        in
        let conservative = run false and specialized = run true in
        check_bool "faster" true
          Time.(specialized.Measure.total < conservative.Measure.total);
        check_bool "overlapped" true (specialized.Measure.overlap > conservative.Measure.overlap));
    Alcotest.test_case "specialized heat3d matches the reference (plane splitting)" `Quick
      (fun () ->
        List.iter
          (fun gpus ->
            match Pipeline.verify_env ~specialize_tb:true app3d Pipeline.Cpu_free ~gpus with
            | Ok _ -> ()
            | Error m -> Alcotest.fail (Printf.sprintf "gpus=%d: %s" gpus m))
          [ 1; 2; 4 ]);
    Alcotest.test_case "too-narrow domains are left unspecialized" `Quick (fun () ->
        (* 2 interior rows per rank: no interior remains after splitting. *)
        let tiny = Pipeline.Jacobi2d { Programs.nx_global = 8; ny_global = 8; tsteps = 2 } in
        let sdfg = Pipeline.compile_sdfg tiny Pipeline.Cpu_free ~gpus:16 in
        match D.Persistent_fusion.apply sdfg with
        | Error e -> Alcotest.fail e
        | Ok p ->
          let _, fused = D.Persistent_fusion.specialize_tb p in
          check Alcotest.int "nothing fused" 0 fused);
    Alcotest.test_case "emitted specialized kernel guards by block group" `Quick (fun () ->
        let sdfg = Pipeline.compile_sdfg app2d Pipeline.Cpu_free ~gpus:4 in
        match D.Persistent_fusion.apply sdfg with
        | Error e -> Alcotest.fail e
        | Ok p ->
          let p', _ = D.Persistent_fusion.specialize_tb p in
          let code = Codegen.emit_persistent p' in
          check_bool "comm guard" true (contains "COMM_BLOCKS" code);
          check_bool "still cooperative" true (contains "cudaLaunchCooperativeKernel" code));
  ]

let pipeline_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"both arms match the reference on random 1D programs" ~count:15
         QCheck.(triple (int_range 1 3) (int_range 2 16) (int_range 0 5))
         (fun (log_gpus, chunk, tsteps) ->
           let gpus = 1 lsl log_gpus in
           let app = Pipeline.Jacobi1d { Programs.n_global = chunk * gpus; tsteps } in
           let ok arm = Result.is_ok (Pipeline.verify_env app arm ~gpus) in
           ok Pipeline.Baseline_mpi && ok Pipeline.Cpu_free));
  ]

let () =
  Alcotest.run "pipeline"
    [
      ("verify", verification_tests);
      ("references", reference_tests);
      ("codegen", codegen_tests);
      ("shape", shape_tests);
      ("specialize-tb", specialize_tests);
      ("properties", pipeline_props);
    ]
