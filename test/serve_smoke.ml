(* CI smoke for the scenario daemon (dune alias [serve-smoke]): boot a
   daemon with the cache self-check armed, issue three requests — two
   distinct scenarios and one repeat of the first with artifacts enabled —
   and assert the repeat is served from the cache with a byte-identical
   payload (artifacts included), the counters agree, and shutdown removes
   the socket. Exits non-zero on any deviation. *)

module Serve = Cpufree_serve
module P = Serve.Protocol
module Scenario = Cpufree_core.Scenario

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("serve-smoke: FAIL: " ^ s);
      exit 1)
    fmt

let () =
  let path = Printf.sprintf "serve-smoke-%d.sock" (Unix.getpid ()) in
  let cfg =
    {
      (Serve.Server.default_config ~socket_path:path) with
      Serve.Server.jobs = 2;
      selfcheck = true;
    }
  in
  let srv = Domain.spawn (fun () -> Serve.Server.run cfg) in
  let rec connect tries =
    match Serve.Client.connect path with
    | Ok c -> c
    | Error e ->
      if tries = 0 then fail "connect: %s" e
      else begin
        Unix.sleepf 0.01;
        connect (tries - 1)
      end
  in
  let c = connect 300 in
  let sc_a =
    Scenario.make ~gpus:2 ~trace:true ~metrics:true
      (Scenario.Stencil { variant = "cpu-free"; dims = "2d:96x96"; iters = 12; no_compute = false })
  in
  let sc_b =
    Scenario.make ~gpus:4
      (Scenario.Stencil
         { variant = "baseline-overlap"; dims = "2d:64x64"; iters = 8; no_compute = false })
  in
  let run id sc =
    match Serve.Client.run c ~id sc with
    | Ok (P.Ok_resp { cached; body = P.Run_result p; _ }) -> (cached, p)
    | Ok (P.Error_resp { message; _ }) -> fail "request %d refused: %s" id message
    | Ok _ -> fail "request %d: unexpected response" id
    | Error e -> fail "request %d: %s" id e
  in
  let cached_a, pay_a = run 1 sc_a in
  let cached_b, _ = run 2 sc_b in
  let cached_a2, pay_a2 = run 3 sc_a in
  if cached_a then fail "first request claimed a cache hit on an empty cache";
  if cached_b then fail "a distinct scenario claimed a cache hit";
  if not cached_a2 then fail "the repeated scenario was not served from the cache";
  if not (P.payload_equal pay_a pay_a2) then
    fail "the cache hit is not byte-identical to the original run";
  (match (pay_a.P.trace, pay_a.P.metrics) with
  | Some _, Some _ -> ()
  | _ -> fail "artifacts missing from the traced run");
  (match Serve.Client.stats c ~id:4 with
  | Ok st ->
    if st.P.simulations <> 2 then fail "expected 2 simulations, daemon reports %d" st.P.simulations;
    if st.P.hits <> 1 then fail "expected 1 cache hit, daemon reports %d" st.P.hits;
    if st.P.errors <> 0 || st.P.overloads <> 0 then
      fail "spurious errors (%d) or overloads (%d)" st.P.errors st.P.overloads
  | Error e -> fail "stats: %s" e);
  (match Serve.Client.shutdown c ~id:5 with
  | Ok () -> ()
  | Error e -> fail "shutdown: %s" e);
  Serve.Client.close c;
  Domain.join srv;
  (match Unix.stat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | _ -> fail "socket file left behind after shutdown");
  print_endline "serve-smoke: OK (3 requests, 1 byte-identical cache hit, clean shutdown)"
