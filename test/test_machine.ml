(* Topology graph: exact routed latencies/ports on the named machines, plus
   qcheck laws (route symmetry, triangle inequality) over random specs. *)

module M = Cpufree_machine
module T = M.Topology
module Time = Cpufree_engine.Time

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_float = Alcotest.(check (float 0.0))

let lat t ~src ~dst = Time.to_ns (T.route_latency t ~src ~dst)

let port_names t ~src ~dst =
  let ps = Array.of_list (T.ports t) in
  List.map (fun p -> ps.(p).T.pname) (T.route_ports t ~src ~dst)

(* ---------------- hgx: must reproduce the flat NVSwitch model ------------- *)

let test_hgx_gpu_pair () =
  let t = T.hgx ~profile:T.a100 ~gpus:8 in
  let src = T.gpu_vertex t 0 and dst = T.gpu_vertex t 3 in
  check_int "gpu-gpu wire latency is exactly nvlink" 1_500 (lat t ~src ~dst);
  check_float "gpu-gpu bottleneck is the nvlink rate" (1.0 /. 300.0)
    (T.route_ns_per_byte t ~src ~dst);
  Alcotest.(check (list string))
    "books exactly source egress + destination ingress"
    [ "gpu0.egress"; "gpu3.ingress" ] (port_names t ~src ~dst)

let test_hgx_host_paths () =
  let t = T.hgx ~profile:T.a100 ~gpus:4 in
  let h = T.host_vertex t ~node:0 and g = T.gpu_vertex t 2 in
  check_int "host-to-gpu is exactly pcie" 2_500 (lat t ~src:h ~dst:g);
  check_int "gpu-to-host is exactly pcie" 2_500 (lat t ~src:g ~dst:h);
  check_float "host path bottleneck is the pcie rate" (1.0 /. 25.0)
    (T.route_ns_per_byte t ~src:h ~dst:g);
  Alcotest.(check (list string))
    "host-to-gpu books host port + gpu ingress"
    [ "host.pcie"; "gpu2.ingress" ] (port_names t ~src:h ~dst:g);
  Alcotest.(check (list string))
    "gpu-to-host books gpu egress + host port"
    [ "gpu2.egress"; "host.pcie" ] (port_names t ~src:g ~dst:h)

let test_hgx_self () =
  let t = T.hgx ~profile:T.a100 ~gpus:2 in
  let g = T.gpu_vertex t 1 in
  check_int "self route has zero latency" 0 (lat t ~src:g ~dst:g);
  check_int "self route is empty" 0 (List.length (T.route t ~src:g ~dst:g));
  check_float "self route serializes at hbm rate" (1.0 /. 1555.0)
    (T.route_ns_per_byte t ~src:g ~dst:g)

let test_hgx_pair_stats () =
  let t = T.hgx ~profile:T.h100 ~gpus:8 in
  check_int "h100 min gpu pair"
    1_200
    (match T.min_gpu_pair_latency t with Some l -> Time.to_ns l | None -> -1);
  check_int "h100 max gpu pair = min on a switch"
    1_200
    (match T.max_gpu_pair_latency t with Some l -> Time.to_ns l | None -> -1);
  check_int "h100 host attach"
    2_500
    (match T.min_host_gpu_latency t with Some l -> Time.to_ns l | None -> -1)

(* ---------------- dgx: inter-node routes pay NIC + IB --------------------- *)

let test_dgx_internode () =
  let t = T.dgx_cluster ~profile:T.a100 ~nodes:2 ~gpus_per_node:8 in
  check_int "16 GPUs" 16 (T.num_gpus t);
  check_int "2 nodes" 2 (T.num_nodes t);
  check_int "gpu 11 lives on node 1" 1 (T.node_of_gpu t 11);
  let a = T.gpu_vertex t 1 and b = T.gpu_vertex t 9 in
  (* egress + switch-to-NIC + IB up + IB down + NIC-to-switch + ingress
     = nvlink + 2*(pcie - nvlink/2) + ib = 2*pcie + ib. *)
  check_int "inter-node gpu pair costs 2*pcie + ib" 6_300 (lat t ~src:a ~dst:b);
  check_float "inter-node bottleneck is the NIC line rate" (1.0 /. 25.0)
    (T.route_ns_per_byte t ~src:a ~dst:b);
  Alcotest.(check (list string))
    "inter-node route books both NIC directions"
    [ "gpu1.egress"; "node0.nic.tx"; "node1.nic.rx"; "gpu9.ingress" ]
    (port_names t ~src:a ~dst:b);
  let c = T.gpu_vertex t 8 in
  check_int "intra-node pair unchanged by scale-out" 1_500 (lat t ~src:b ~dst:c);
  check_int "min gpu pair is the intra-node one"
    1_500
    (match T.min_gpu_pair_latency t with Some l -> Time.to_ns l | None -> -1);
  check_int "max gpu pair is the inter-node one"
    6_300
    (match T.max_gpu_pair_latency t with Some l -> Time.to_ns l | None -> -1)

let test_dgx_hosts () =
  let t = T.dgx_cluster ~profile:T.a100 ~nodes:2 ~gpus_per_node:4 in
  let h0 = T.host_vertex t ~node:0 and h1 = T.host_vertex t ~node:1 in
  let g_far = T.gpu_vertex t 5 in
  check_int "local host attach still pcie" 2_500 (lat t ~src:h1 ~dst:g_far);
  check_bool "remote host reaches remote gpu" true
    (lat t ~src:h0 ~dst:g_far > 2_500);
  check_bool "host-to-host crosses the spine" true (T.reachable t ~src:h0 ~dst:h1)

(* ---------------- ring and pcie_only -------------------------------------- *)

let test_ring_multihop () =
  let t = T.ring ~profile:T.a100 ~gpus:8 in
  let a = T.gpu_vertex t 0 in
  check_int "neighbour is one hop" 1_500 (lat t ~src:a ~dst:(T.gpu_vertex t 1));
  check_int "opposite gpu is four hops" 6_000 (lat t ~src:a ~dst:(T.gpu_vertex t 4));
  Alcotest.(check (list string))
    "two-hop route books the relay's ports too"
    [ "gpu0.egress"; "gpu1.ingress"; "gpu1.egress"; "gpu2.ingress" ]
    (port_names t ~src:a ~dst:(T.gpu_vertex t 2))

let test_pcie_only () =
  let t = T.pcie_only ~profile:T.a100 ~gpus:4 in
  let a = T.gpu_vertex t 0 and b = T.gpu_vertex t 3 in
  check_int "peer traffic pays full pcie" 2_500 (lat t ~src:a ~dst:b);
  check_float "peer traffic at pcie rate" (1.0 /. 25.0) (T.route_ns_per_byte t ~src:a ~dst:b);
  Alcotest.(check (list string))
    "peer route shares the root complex"
    [ "gpu0.egress"; "pcie.root"; "gpu3.ingress" ]
    (port_names t ~src:a ~dst:b)

(* ---------------- specs --------------------------------------------------- *)

let test_spec_parsing () =
  let ok s v =
    match T.spec_of_string s with
    | Ok got -> check_bool (Printf.sprintf "parse %S" s) true (got = v)
    | Error e -> Alcotest.failf "parse %S: %s" s e
  in
  ok "hgx" T.Hgx;
  ok "RING" T.Ring;
  ok "pcie" T.Pcie_only;
  ok "pcie_only" T.Pcie_only;
  ok "dgx" (T.Dgx { nodes = 2 });
  ok "dgx:4" (T.Dgx { nodes = 4 });
  check_bool "garbage rejected" true
    (match T.spec_of_string "torus" with Error _ -> true | Ok _ -> false);
  check_bool "dgx:0 rejected" true
    (match T.spec_of_string "dgx:0" with Error _ -> true | Ok _ -> false);
  check_str "dgx roundtrip" "dgx:3" (T.spec_to_string (T.Dgx { nodes = 3 }));
  check_bool "uneven dgx split rejected" true
    (try
       ignore (T.instantiate (T.Dgx { nodes = 3 }) ~profile:T.a100 ~gpus:8);
       false
     with Invalid_argument _ -> true)

let test_bad_lookups () =
  let t = T.hgx ~profile:T.a100 ~gpus:2 in
  check_bool "gpu_vertex range-checked" true
    (try
       ignore (T.gpu_vertex t 5);
       false
     with Invalid_argument _ -> true);
  check_bool "route vid range-checked" true
    (try
       ignore (T.route_latency t ~src:0 ~dst:999);
       false
     with Invalid_argument _ -> true)

(* ---------------- qcheck laws --------------------------------------------- *)

let gen_topology =
  QCheck.Gen.(
    let* profile = oneofl [ T.a100; T.h100 ] in
    let* spec =
      oneof
        [
          return T.Hgx;
          return T.Ring;
          return T.Pcie_only;
          map (fun n -> T.Dgx { nodes = n }) (int_range 2 4);
        ]
    in
    let* per = int_range 1 6 in
    let gpus = match spec with T.Dgx { nodes } -> nodes * per | _ -> per + 1 in
    return (T.instantiate spec ~profile ~gpus))

let arb_topology =
  QCheck.make ~print:(fun t -> Format.asprintf "%a" T.pp t) gen_topology

(* All named constructors build symmetric graphs: every routed cost must be
   direction-independent. *)
let prop_route_symmetry =
  QCheck.Test.make ~name:"routed latency is symmetric" ~count:100 arb_topology (fun t ->
      let n = T.num_vertices t in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if T.reachable t ~src:a ~dst:b then
            ok :=
              !ok
              && T.reachable t ~src:b ~dst:a
              && Time.equal (T.route_latency t ~src:a ~dst:b) (T.route_latency t ~src:b ~dst:a)
        done
      done;
      !ok)

let prop_triangle =
  QCheck.Test.make ~name:"routed latency obeys the triangle inequality" ~count:100 arb_topology
    (fun t ->
      let n = T.num_vertices t in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          for c = 0 to n - 1 do
            if
              T.reachable t ~src:a ~dst:b && T.reachable t ~src:b ~dst:c
              && T.reachable t ~src:a ~dst:c
            then
              ok :=
                !ok
                && Time.to_ns (T.route_latency t ~src:a ~dst:c)
                   <= Time.to_ns (T.route_latency t ~src:a ~dst:b)
                      + Time.to_ns (T.route_latency t ~src:b ~dst:c)
          done
        done
      done;
      !ok)

let prop_route_well_formed =
  QCheck.Test.make ~name:"routes are contiguous and latency-additive" ~count:100 arb_topology
    (fun t ->
      let n = T.num_vertices t in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if a <> b && T.reachable t ~src:a ~dst:b then begin
            let r = T.route t ~src:a ~dst:b in
            let contiguous =
              match r with
              | [] -> false
              | first :: _ ->
                first.T.lsrc = a
                && (List.rev r |> List.hd).T.ldst = b
                && fst
                     (List.fold_left
                        (fun (good, prev) l -> (good && l.T.lsrc = prev, l.T.ldst))
                        (true, a) r)
            in
            let additive =
              List.fold_left (fun acc l -> acc + Time.to_ns l.T.llatency) 0 r
              = Time.to_ns (T.route_latency t ~src:a ~dst:b)
            in
            ok := !ok && contiguous && additive
          end
        done
      done;
      !ok)

let () =
  Alcotest.run "machine"
    [
      ( "hgx",
        [
          Alcotest.test_case "gpu pair" `Quick test_hgx_gpu_pair;
          Alcotest.test_case "host paths" `Quick test_hgx_host_paths;
          Alcotest.test_case "self route" `Quick test_hgx_self;
          Alcotest.test_case "pair stats" `Quick test_hgx_pair_stats;
        ] );
      ( "dgx",
        [
          Alcotest.test_case "inter-node" `Quick test_dgx_internode;
          Alcotest.test_case "hosts" `Quick test_dgx_hosts;
        ] );
      ( "alt fabrics",
        [
          Alcotest.test_case "ring multi-hop" `Quick test_ring_multihop;
          Alcotest.test_case "pcie only" `Quick test_pcie_only;
        ] );
      ( "specs",
        [
          Alcotest.test_case "parsing" `Quick test_spec_parsing;
          Alcotest.test_case "bad lookups" `Quick test_bad_lookups;
        ] );
      ( "laws",
        List.map
          (fun p -> QCheck_alcotest.to_alcotest p)
          [ prop_route_symmetry; prop_triangle; prop_route_well_formed ] );
    ]
