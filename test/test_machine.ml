(* Topology graph: exact routed latencies/ports on the named machines, plus
   qcheck laws (route symmetry, triangle inequality) over random specs. *)

module M = Cpufree_machine
module T = M.Topology
module Time = Cpufree_engine.Time

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_float = Alcotest.(check (float 0.0))

let lat t ~src ~dst = Time.to_ns (T.route_latency t ~src ~dst)

let port_names t ~src ~dst =
  let ps = Array.of_list (T.ports t) in
  List.map (fun p -> ps.(p).T.pname) (T.route_ports t ~src ~dst)

(* ---------------- hgx: must reproduce the flat NVSwitch model ------------- *)

let test_hgx_gpu_pair () =
  let t = T.hgx ~profile:T.a100 ~gpus:8 in
  let src = T.gpu_vertex t 0 and dst = T.gpu_vertex t 3 in
  check_int "gpu-gpu wire latency is exactly nvlink" 1_500 (lat t ~src ~dst);
  check_float "gpu-gpu bottleneck is the nvlink rate" (1.0 /. 300.0)
    (T.route_ns_per_byte t ~src ~dst);
  Alcotest.(check (list string))
    "books exactly source egress + destination ingress"
    [ "gpu0.egress"; "gpu3.ingress" ] (port_names t ~src ~dst)

let test_hgx_host_paths () =
  let t = T.hgx ~profile:T.a100 ~gpus:4 in
  let h = T.host_vertex t ~node:0 and g = T.gpu_vertex t 2 in
  check_int "host-to-gpu is exactly pcie" 2_500 (lat t ~src:h ~dst:g);
  check_int "gpu-to-host is exactly pcie" 2_500 (lat t ~src:g ~dst:h);
  check_float "host path bottleneck is the pcie rate" (1.0 /. 25.0)
    (T.route_ns_per_byte t ~src:h ~dst:g);
  Alcotest.(check (list string))
    "host-to-gpu books host port + gpu ingress"
    [ "host.pcie"; "gpu2.ingress" ] (port_names t ~src:h ~dst:g);
  Alcotest.(check (list string))
    "gpu-to-host books gpu egress + host port"
    [ "gpu2.egress"; "host.pcie" ] (port_names t ~src:g ~dst:h)

let test_hgx_self () =
  let t = T.hgx ~profile:T.a100 ~gpus:2 in
  let g = T.gpu_vertex t 1 in
  check_int "self route has zero latency" 0 (lat t ~src:g ~dst:g);
  check_int "self route is empty" 0 (List.length (T.route t ~src:g ~dst:g));
  check_float "self route serializes at hbm rate" (1.0 /. 1555.0)
    (T.route_ns_per_byte t ~src:g ~dst:g)

let test_hgx_pair_stats () =
  let t = T.hgx ~profile:T.h100 ~gpus:8 in
  check_int "h100 min gpu pair"
    1_200
    (match T.min_gpu_pair_latency t with Some l -> Time.to_ns l | None -> -1);
  check_int "h100 max gpu pair = min on a switch"
    1_200
    (match T.max_gpu_pair_latency t with Some l -> Time.to_ns l | None -> -1);
  check_int "h100 host attach"
    2_500
    (match T.min_host_gpu_latency t with Some l -> Time.to_ns l | None -> -1)

(* ---------------- dgx: inter-node routes pay NIC + IB --------------------- *)

let test_dgx_internode () =
  let t = T.dgx_cluster ~profile:T.a100 ~nodes:2 ~gpus_per_node:8 in
  check_int "16 GPUs" 16 (T.num_gpus t);
  check_int "2 nodes" 2 (T.num_nodes t);
  check_int "gpu 11 lives on node 1" 1 (T.node_of_gpu t 11);
  let a = T.gpu_vertex t 1 and b = T.gpu_vertex t 9 in
  (* egress + switch-to-NIC + IB up + IB down + NIC-to-switch + ingress
     = nvlink + 2*(pcie - nvlink/2) + ib = 2*pcie + ib. *)
  check_int "inter-node gpu pair costs 2*pcie + ib" 6_300 (lat t ~src:a ~dst:b);
  check_float "inter-node bottleneck is the NIC line rate" (1.0 /. 25.0)
    (T.route_ns_per_byte t ~src:a ~dst:b);
  Alcotest.(check (list string))
    "inter-node route books both NIC directions"
    [ "gpu1.egress"; "node0.nic.tx"; "node1.nic.rx"; "gpu9.ingress" ]
    (port_names t ~src:a ~dst:b);
  let c = T.gpu_vertex t 8 in
  check_int "intra-node pair unchanged by scale-out" 1_500 (lat t ~src:b ~dst:c);
  check_int "min gpu pair is the intra-node one"
    1_500
    (match T.min_gpu_pair_latency t with Some l -> Time.to_ns l | None -> -1);
  check_int "max gpu pair is the inter-node one"
    6_300
    (match T.max_gpu_pair_latency t with Some l -> Time.to_ns l | None -> -1)

let test_dgx_hosts () =
  let t = T.dgx_cluster ~profile:T.a100 ~nodes:2 ~gpus_per_node:4 in
  let h0 = T.host_vertex t ~node:0 and h1 = T.host_vertex t ~node:1 in
  let g_far = T.gpu_vertex t 5 in
  check_int "local host attach still pcie" 2_500 (lat t ~src:h1 ~dst:g_far);
  check_bool "remote host reaches remote gpu" true
    (lat t ~src:h0 ~dst:g_far > 2_500);
  check_bool "host-to-host crosses the spine" true (T.reachable t ~src:h0 ~dst:h1)

(* ---------------- ring and pcie_only -------------------------------------- *)

let test_ring_multihop () =
  let t = T.ring ~profile:T.a100 ~gpus:8 in
  let a = T.gpu_vertex t 0 in
  check_int "neighbour is one hop" 1_500 (lat t ~src:a ~dst:(T.gpu_vertex t 1));
  check_int "opposite gpu is four hops" 6_000 (lat t ~src:a ~dst:(T.gpu_vertex t 4));
  Alcotest.(check (list string))
    "two-hop route books the relay's ports too"
    [ "gpu0.egress"; "gpu1.ingress"; "gpu1.egress"; "gpu2.ingress" ]
    (port_names t ~src:a ~dst:(T.gpu_vertex t 2))

let test_pcie_only () =
  let t = T.pcie_only ~profile:T.a100 ~gpus:4 in
  let a = T.gpu_vertex t 0 and b = T.gpu_vertex t 3 in
  check_int "peer traffic pays full pcie" 2_500 (lat t ~src:a ~dst:b);
  check_float "peer traffic at pcie rate" (1.0 /. 25.0) (T.route_ns_per_byte t ~src:a ~dst:b);
  Alcotest.(check (list string))
    "peer route shares the root complex"
    [ "gpu0.egress"; "pcie.root"; "gpu3.ingress" ]
    (port_names t ~src:a ~dst:b)

(* ---------------- cluster fabrics: fat tree and dragonfly ----------------- *)

let test_fat_tree_classes () =
  let t = T.fat_tree ~profile:T.a100 ~arity:2 ~rails:2 ~nodes:4 ~gpus_per_node:2 in
  check_str "routes structurally" "structural" (T.routing_kind t);
  check_int "8 GPUs" 8 (T.num_gpus t);
  let g n = T.gpu_vertex t n in
  check_int "same-node pair rides the NVSwitch" 1_500 (lat t ~src:(g 0) ~dst:(g 1));
  (* Nodes 0 and 1 share leaf 0 (arity 2); node 2 hangs off leaf 1. *)
  check_int "intra-leaf pair costs 2*pcie + ib" 6_300 (lat t ~src:(g 0) ~dst:(g 2));
  check_int "cross-leaf pair adds one more ib hop" 7_600 (lat t ~src:(g 0) ~dst:(g 4));
  check_int "min gpu pair is the same-node one" 1_500
    (match T.min_gpu_pair_latency t with Some l -> Time.to_ns l | None -> -1);
  check_int "max gpu pair is the cross-leaf one" 7_600
    (match T.max_gpu_pair_latency t with Some l -> Time.to_ns l | None -> -1);
  check_int "host attach stays pcie" 2_500
    (match T.min_host_gpu_latency t with Some l -> Time.to_ns l | None -> -1);
  check_int "structural routing caches no rows" 0 (T.route_rows_cached t)

let test_dragonfly_classes () =
  let t = T.dragonfly ~profile:T.a100 ~a:2 ~p:2 ~h:1 ~nodes:8 ~gpus_per_node:2 in
  check_str "routes structurally" "structural" (T.routing_kind t);
  let g n = T.gpu_vertex t n in
  check_int "same-node pair rides the NVSwitch" 1_500 (lat t ~src:(g 0) ~dst:(g 1));
  (* p = 2: nodes 0 and 1 share a router; node 2 is the same group's other
     router; node 4 opens group 1. *)
  check_int "same-router pair costs 2*pcie + ib" 6_300 (lat t ~src:(g 0) ~dst:(g 2));
  check_int "same-group pair adds a local hop" 7_600 (lat t ~src:(g 0) ~dst:(g 4));
  (* Nodes 0 and 4 sit on the routers that own the inter-group link, so the
     minimal route is local-free; nodes 2 and 6 (routers 1) detour one local
     hop on each side. *)
  check_int "cross-group pair pays the optical hop" 10_200 (lat t ~src:(g 0) ~dst:(g 8));
  check_int "cross-group pair off the owner routers adds two local hops" 12_800
    (lat t ~src:(g 4) ~dst:(g 12));
  check_int "max gpu pair is the worst cross-group one" 12_800
    (match T.max_gpu_pair_latency t with Some l -> Time.to_ns l | None -> -1);
  check_int "structural routing caches no rows" 0 (T.route_rows_cached t)

(* Building a 1024-GPU machine must cost O(endpoints): no all-pairs tables,
   no Dijkstra rows — the bound is a wide margin over the measured build
   (a few MB) but far below what one eager row per source would allocate. *)
let test_cluster_build_lazy () =
  let budget = 64e6 in
  let check_build name t allocated =
    check_bool (name ^ " build allocates O(endpoints)") true (allocated < budget);
    check_str (name ^ " routes structurally") "structural" (T.routing_kind t);
    check_int (name ^ " caches no rows at build") 0 (T.route_rows_cached t);
    let src = T.gpu_vertex t 0 and dst = T.gpu_vertex t 1023 in
    check_bool (name ^ " routes a cross-machine pair") true (lat t ~src ~dst > 1_500);
    check_int (name ^ " structural route caches nothing") 0 (T.route_rows_cached t)
  in
  let b0 = Gc.allocated_bytes () in
  let ft = T.fat_tree ~profile:T.a100 ~arity:4 ~rails:2 ~nodes:128 ~gpus_per_node:8 in
  let b1 = Gc.allocated_bytes () in
  let df = T.dragonfly ~profile:T.a100 ~a:4 ~p:4 ~h:2 ~nodes:128 ~gpus_per_node:8 in
  let b2 = Gc.allocated_bytes () in
  check_build "fat tree" ft (b1 -. b0);
  check_build "dragonfly" df (b2 -. b1)

(* The Dijkstra row cache is a speed/memory knob only: routes resolved with
   a single cached row must be identical — links, ports and latency — to
   the default cache, because eviction forces deterministic recomputation. *)
let test_cache_size_invariance () =
  let t_full = T.dgx_cluster ~profile:T.a100 ~nodes:3 ~gpus_per_node:2 in
  let t_one = T.dgx_cluster ~profile:T.a100 ~nodes:3 ~gpus_per_node:2 in
  T.set_route_cache t_one 1;
  let n = T.num_vertices t_full in
  check_int "same graph" n (T.num_vertices t_one);
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if T.reachable t_full ~src:a ~dst:b then begin
        if lat t_full ~src:a ~dst:b <> lat t_one ~src:a ~dst:b then
          Alcotest.failf "latency differs at cache size 1 for %d->%d" a b;
        let lids t = List.map (fun l -> l.T.lid) (T.route t ~src:a ~dst:b) in
        if lids t_full <> lids t_one then
          Alcotest.failf "route differs at cache size 1 for %d->%d" a b;
        if T.route_ports t_full ~src:a ~dst:b <> T.route_ports t_one ~src:a ~dst:b then
          Alcotest.failf "ports differ at cache size 1 for %d->%d" a b
      end
    done
  done;
  check_bool "cache honours its cap" true (T.route_rows_cached t_one <= 1);
  (* Shrinking an already-warm cache trims immediately. *)
  T.set_route_cache t_full 2;
  check_bool "trim on shrink" true (T.route_rows_cached t_full <= 2)

(* ---------------- specs --------------------------------------------------- *)

let test_spec_parsing () =
  let ok s v =
    match T.spec_of_string s with
    | Ok got -> check_bool (Printf.sprintf "parse %S" s) true (got = v)
    | Error e -> Alcotest.failf "parse %S: %s" s e
  in
  ok "hgx" T.Hgx;
  ok "RING" T.Ring;
  ok "pcie" T.Pcie_only;
  ok "pcie_only" T.Pcie_only;
  ok "dgx" (T.Dgx { nodes = 2 });
  ok "dgx:4" (T.Dgx { nodes = 4 });
  check_bool "garbage rejected" true
    (match T.spec_of_string "torus" with Error _ -> true | Ok _ -> false);
  check_bool "dgx:0 rejected" true
    (match T.spec_of_string "dgx:0" with Error _ -> true | Ok _ -> false);
  check_str "dgx roundtrip" "dgx:3" (T.spec_to_string (T.Dgx { nodes = 3 }));
  check_bool "uneven dgx split rejected" true
    (try
       ignore (T.instantiate (T.Dgx { nodes = 3 }) ~profile:T.a100 ~gpus:8);
       false
     with Invalid_argument _ -> true);
  ok "fat-tree" (T.Fat_tree { arity = 4; rails = 1; gpus_per_node = 8 });
  ok "fat_tree:8" (T.Fat_tree { arity = 8; rails = 1; gpus_per_node = 8 });
  ok "FatTree:4:2:4" (T.Fat_tree { arity = 4; rails = 2; gpus_per_node = 4 });
  ok "dragonfly" (T.Dragonfly { a = 4; p = 2; h = 2; gpus_per_node = 8 });
  ok "Dragonfly:2:1:1:2" (T.Dragonfly { a = 2; p = 1; h = 1; gpus_per_node = 2 });
  check_str "fat-tree roundtrip" "fat-tree:4:2:8"
    (T.spec_to_string (T.Fat_tree { arity = 4; rails = 2; gpus_per_node = 8 }));
  check_str "dragonfly roundtrip" "dragonfly:4:2:2:8"
    (T.spec_to_string (T.Dragonfly { a = 4; p = 2; h = 2; gpus_per_node = 8 }));
  check_bool "fat-tree:0 rejected" true
    (match T.spec_of_string "fat-tree:0" with Error _ -> true | Ok _ -> false);
  check_bool "partial dragonfly spec rejected" true
    (match T.spec_of_string "dragonfly:2" with Error _ -> true | Ok _ -> false);
  check_bool "dragonfly over its global-link budget rejected" true
    (match
       T.validate (T.Dragonfly { a = 1; p = 1; h = 1; gpus_per_node = 1 }) ~gpus:8
     with
    | Error _ -> true
    | Ok () -> false)

let test_bad_lookups () =
  let t = T.hgx ~profile:T.a100 ~gpus:2 in
  check_bool "gpu_vertex range-checked" true
    (try
       ignore (T.gpu_vertex t 5);
       false
     with Invalid_argument _ -> true);
  check_bool "route vid range-checked" true
    (try
       ignore (T.route_latency t ~src:0 ~dst:999);
       false
     with Invalid_argument _ -> true)

(* ---------------- qcheck laws --------------------------------------------- *)

let gen_topology =
  QCheck.Gen.(
    let* profile = oneofl [ T.a100; T.h100 ] in
    let* spec =
      oneof
        [
          return T.Hgx;
          return T.Ring;
          return T.Pcie_only;
          map (fun n -> T.Dgx { nodes = n }) (int_range 2 4);
          map2
            (fun arity rails -> T.Fat_tree { arity; rails; gpus_per_node = 2 })
            (int_range 2 3) (int_range 1 2);
          map (fun h -> T.Dragonfly { a = 2; p = 2; h; gpus_per_node = 2 }) (int_range 1 2);
        ]
    in
    let* per = int_range 1 6 in
    let gpus =
      match spec with
      | T.Dgx { nodes } -> nodes * per
      | T.Fat_tree _ | T.Dragonfly _ -> 2 * per
      | _ -> per + 1
    in
    return (T.instantiate spec ~profile ~gpus))

let arb_topology =
  QCheck.make ~print:(fun t -> Format.asprintf "%a" T.pp t) gen_topology

(* All named constructors build symmetric graphs: every routed cost must be
   direction-independent. *)
let prop_route_symmetry =
  QCheck.Test.make ~name:"routed latency is symmetric" ~count:100 arb_topology (fun t ->
      let n = T.num_vertices t in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if T.reachable t ~src:a ~dst:b then
            ok :=
              !ok
              && T.reachable t ~src:b ~dst:a
              && Time.equal (T.route_latency t ~src:a ~dst:b) (T.route_latency t ~src:b ~dst:a)
        done
      done;
      !ok)

let prop_triangle =
  QCheck.Test.make ~name:"routed latency obeys the triangle inequality" ~count:100 arb_topology
    (fun t ->
      let n = T.num_vertices t in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          for c = 0 to n - 1 do
            if
              T.reachable t ~src:a ~dst:b && T.reachable t ~src:b ~dst:c
              && T.reachable t ~src:a ~dst:c
            then
              ok :=
                !ok
                && Time.to_ns (T.route_latency t ~src:a ~dst:c)
                   <= Time.to_ns (T.route_latency t ~src:a ~dst:b)
                      + Time.to_ns (T.route_latency t ~src:b ~dst:c)
          done
        done
      done;
      !ok)

let prop_route_well_formed =
  QCheck.Test.make ~name:"routes are contiguous and latency-additive" ~count:100 arb_topology
    (fun t ->
      let n = T.num_vertices t in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if a <> b && T.reachable t ~src:a ~dst:b then begin
            let r = T.route t ~src:a ~dst:b in
            let contiguous =
              match r with
              | [] -> false
              | first :: _ ->
                first.T.lsrc = a
                && (List.rev r |> List.hd).T.ldst = b
                && fst
                     (List.fold_left
                        (fun (good, prev) l -> (good && l.T.lsrc = prev, l.T.ldst))
                        (true, a) r)
            in
            let additive =
              List.fold_left (fun acc l -> acc + Time.to_ns l.T.llatency) 0 r
              = Time.to_ns (T.route_latency t ~src:a ~dst:b)
            in
            ok := !ok && contiguous && additive
          end
        done
      done;
      !ok)

(* Structural routing is property-tested against the uncached Dijkstra
   oracle: same reachability, same latency on every vertex pair. The paths
   themselves may differ (equal-cost multipath across rails/spines), the
   costs may not. *)
let gen_structural =
  QCheck.Gen.(
    let* profile = oneofl [ T.a100; T.h100 ] in
    oneof
      [
        (let* arity = int_range 2 4 in
         let* rails = int_range 1 3 in
         let* nodes = int_range 1 8 in
         let* gpus_per_node = int_range 1 3 in
         return (T.fat_tree ~profile ~arity ~rails ~nodes ~gpus_per_node));
        (let* a = int_range 2 3 in
         let* p = int_range 1 2 in
         let* h = int_range 1 2 in
         let* nodes = int_range 1 8 in
         let* gpus_per_node = int_range 1 2 in
         let nodes = min nodes (a * p * ((a * h) + 1)) in
         return (T.dragonfly ~profile ~a ~p ~h ~nodes ~gpus_per_node));
      ])

let arb_structural =
  QCheck.make ~print:(fun t -> Format.asprintf "%a" T.pp t) gen_structural

let prop_structural_matches_dijkstra =
  QCheck.Test.make ~name:"structural routing equals reference Dijkstra" ~count:40
    arb_structural (fun t ->
      if T.routing_kind t <> "structural" then QCheck.Test.fail_report "not structural";
      let n = T.num_vertices t in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          match T.dijkstra_reference t ~src:a ~dst:b with
          | None -> ok := !ok && not (T.reachable t ~src:a ~dst:b)
          | Some (_, reference) ->
            ok :=
              !ok
              && T.reachable t ~src:a ~dst:b
              && Time.equal (T.route_latency t ~src:a ~dst:b) reference
        done
      done;
      !ok)

(* ---------------- degraded routing ---------------------------------------- *)

let test_ring_reroutes_around_dead_link () =
  let t = T.ring ~profile:T.a100 ~gpus:4 in
  let g0 = T.gpu_vertex t 0 and g1 = T.gpu_vertex t 1 in
  let healthy = lat t ~src:g0 ~dst:g1 in
  check_bool "starts healthy" false (T.degraded t);
  check_int "epoch starts at zero" 0 (T.route_epoch t);
  T.fail_link t ~src:"gpu0" ~dst:"gpu1";
  check_bool "degraded" true (T.degraded t);
  check_bool "epoch bumped" true (T.route_epoch t > 0);
  check_bool "still reachable" true (T.reachable t ~src:g0 ~dst:g1);
  (* The ring reroutes the long way round: three live hops. *)
  check_int "detour latency" (3 * healthy) (lat t ~src:g0 ~dst:g1);
  List.iter
    (fun l ->
      check_bool "route avoids the corpse" false
        ((l.T.lsrc = g0 && l.T.ldst = g1) || (l.T.lsrc = g1 && l.T.ldst = g0)))
    (T.route t ~src:g0 ~dst:g1);
  (* Idempotent: killing the same link again changes nothing. *)
  let epoch = T.route_epoch t in
  T.fail_link t ~src:"gpu0" ~dst:"gpu1";
  check_int "idempotent" epoch (T.route_epoch t)

let test_second_failure_partitions () =
  let t = T.ring ~profile:T.a100 ~gpus:4 in
  T.fail_link t ~src:"gpu0" ~dst:"gpu1";
  T.fail_link t ~src:"gpu1" ~dst:"gpu2";
  let g0 = T.gpu_vertex t 0 and g1 = T.gpu_vertex t 1 in
  check_bool "gpu1 cut off" false (T.reachable t ~src:g0 ~dst:g1);
  (match T.route_latency t ~src:g0 ~dst:g1 with
  | (_ : Time.t) -> Alcotest.fail "expected Partitioned"
  | exception T.Partitioned msg ->
    check_bool "diagnosis names the endpoints" true
      (Astring.String.is_infix ~affix:"gpu0" msg && Astring.String.is_infix ~affix:"gpu1" msg));
  check_bool "dead links counted" true (T.dead_link_count t > 0);
  (* The rest of the ring still talks. *)
  check_bool "survivors route" true
    (T.reachable t ~src:g0 ~dst:(T.gpu_vertex t 3))

let test_switch_failure_cuts_node () =
  let t = T.dgx_cluster ~profile:T.a100 ~nodes:2 ~gpus_per_node:2 in
  T.fail_switch t ~name:"node1.nvswitch";
  Alcotest.(check (list string)) "obituary" [ "node1.nvswitch" ] (T.dead_vertices t);
  let g0 = T.gpu_vertex t 0 and g2 = T.gpu_vertex t 2 in
  (* Node 1's GPUs hang off the dead switch: unreachable from node 0. *)
  check_bool "cross-node dead" false (T.reachable t ~src:g0 ~dst:g2);
  (* Node 0 stays intact. *)
  check_bool "node0 intact" true (T.reachable t ~src:g0 ~dst:(T.gpu_vertex t 1))

(* Degraded routing is property-tested against the same Dijkstra oracle,
   which recomputes on the surviving subgraph: after a deterministic
   link/switch kill, re-resolved routes must match the oracle, avoid the
   corpse, and keep the metric laws. *)

let apply_kill t pick =
  let vs = Array.of_list (T.vertices t) in
  let links = Array.of_list (T.links t) in
  let switches =
    List.filter
      (fun v -> match v.T.kind with T.Switch _ -> true | _ -> false)
      (T.vertices t)
  in
  if pick land 1 = 1 && switches <> [] then begin
    let v = List.nth switches (pick / 2 mod List.length switches) in
    T.fail_switch t ~name:v.T.vname;
    None
  end
  else begin
    let l = links.(pick / 2 mod Array.length links) in
    T.fail_link t ~src:vs.(l.T.lsrc).T.vname ~dst:vs.(l.T.ldst).T.vname;
    Some (l.T.lsrc, l.T.ldst)
  end

let arb_degraded =
  QCheck.make
    ~print:(fun (t, pick) -> Format.asprintf "%a kill=%d" T.pp t pick)
    QCheck.Gen.(pair gen_topology (int_bound 9999))

let prop_degraded_matches_dijkstra =
  QCheck.Test.make ~name:"degraded routing equals the dead-aware Dijkstra oracle"
    ~count:60 arb_degraded (fun (t, pick) ->
      let vs = Array.of_list (T.vertices t) in
      let killed_pair = apply_kill t pick in
      if not (T.degraded t) then QCheck.Test.fail_report "kill did not degrade";
      let dead = T.dead_vertices t in
      let n = T.num_vertices t in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          match T.dijkstra_reference t ~src:a ~dst:b with
          | None -> ok := !ok && not (T.reachable t ~src:a ~dst:b)
          | Some (_, reference) ->
            ok :=
              !ok
              && T.reachable t ~src:a ~dst:b
              && Time.equal (T.route_latency t ~src:a ~dst:b) reference
              && T.reachable t ~src:b ~dst:a
              && Time.equal (T.route_latency t ~src:b ~dst:a) reference;
            if a <> b && !ok then
              List.iter
                (fun l ->
                  if
                    List.mem vs.(l.T.lsrc).T.vname dead
                    || List.mem vs.(l.T.ldst).T.vname dead
                  then ok := false;
                  match killed_pair with
                  | Some (x, y) ->
                    if (l.T.lsrc = x && l.T.ldst = y) || (l.T.lsrc = y && l.T.ldst = x)
                    then ok := false
                  | None -> ())
                (T.route t ~src:a ~dst:b)
        done
      done;
      !ok)

let prop_degraded_triangle =
  QCheck.Test.make ~name:"degraded latency keeps symmetry and the triangle inequality"
    ~count:40 arb_degraded (fun (t, pick) ->
      let (_ : (int * int) option) = apply_kill t pick in
      let n = T.num_vertices t in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          for c = 0 to n - 1 do
            if
              T.reachable t ~src:a ~dst:b && T.reachable t ~src:b ~dst:c
              && T.reachable t ~src:a ~dst:c
            then
              ok :=
                !ok
                && Time.to_ns (T.route_latency t ~src:a ~dst:c)
                   <= Time.to_ns (T.route_latency t ~src:a ~dst:b)
                      + Time.to_ns (T.route_latency t ~src:b ~dst:c)
          done
        done
      done;
      !ok)

let () =
  Alcotest.run "machine"
    [
      ( "hgx",
        [
          Alcotest.test_case "gpu pair" `Quick test_hgx_gpu_pair;
          Alcotest.test_case "host paths" `Quick test_hgx_host_paths;
          Alcotest.test_case "self route" `Quick test_hgx_self;
          Alcotest.test_case "pair stats" `Quick test_hgx_pair_stats;
        ] );
      ( "dgx",
        [
          Alcotest.test_case "inter-node" `Quick test_dgx_internode;
          Alcotest.test_case "hosts" `Quick test_dgx_hosts;
        ] );
      ( "alt fabrics",
        [
          Alcotest.test_case "ring multi-hop" `Quick test_ring_multihop;
          Alcotest.test_case "pcie only" `Quick test_pcie_only;
        ] );
      ( "cluster fabrics",
        [
          Alcotest.test_case "fat tree latency classes" `Quick test_fat_tree_classes;
          Alcotest.test_case "dragonfly latency classes" `Quick test_dragonfly_classes;
          Alcotest.test_case "1024-GPU build is lazy" `Quick test_cluster_build_lazy;
          Alcotest.test_case "route cache size is invisible" `Quick test_cache_size_invariance;
        ] );
      ( "specs",
        [
          Alcotest.test_case "parsing" `Quick test_spec_parsing;
          Alcotest.test_case "bad lookups" `Quick test_bad_lookups;
        ] );
      ( "degraded",
        [
          Alcotest.test_case "ring reroutes around a dead link" `Quick
            test_ring_reroutes_around_dead_link;
          Alcotest.test_case "second failure partitions with a diagnosis" `Quick
            test_second_failure_partitions;
          Alcotest.test_case "switch failure cuts its node off" `Quick
            test_switch_failure_cuts_node;
        ] );
      ( "laws",
        List.map
          (fun p -> QCheck_alcotest.to_alcotest p)
          [
            prop_route_symmetry;
            prop_triangle;
            prop_route_well_formed;
            prop_structural_matches_dijkstra;
            prop_degraded_matches_dijkstra;
            prop_degraded_triangle;
          ] );
    ]
