(* Benchmark harness: regenerates every figure of the paper's evaluation on
   the simulated 8x A100 machine and prints the same series the paper plots.

   Every figure sweep is a list of independent scenarios (each owns its own
   engine) executed on the Parallel domain pool, so the harness scales with
   host cores while the simulated results stay bit-identical to a
   sequential run. Pool size: CPUFREE_JOBS env var, default the host core
   count. Wall-clock chatter goes to stderr so stdout is byte-identical
   across pool sizes.

   Run: dune exec bench/main.exe            (all figures)
        dune exec bench/main.exe -- quick   (skip the largest sweeps)
        dune exec bench/main.exe -- json    (also write BENCH_results.json)
        dune exec bench/main.exe -- bechamel (also run wall-clock microbenches)

   Figure index (see DESIGN.md / EXPERIMENTS.md):
     fig2.1b  timeline of the CPU-controlled overlapping stencil
     fig2.2a  pure communication+synchronization overhead (no compute)
     fig2.2b  communication overlap ratio and total time
     fig5.1b  timeline of the distributed DaCe MPI baseline
     fig6.1   2D Jacobi weak scaling (small / medium / large)
     fig6.2   3D Jacobi weak scaling, no-compute, strong scaling
     fig6.3a  DaCe Jacobi 1D baseline vs CPU-Free
     fig6.3b  DaCe Jacobi 2D baseline vs CPU-Free
     headline paper-vs-measured speedup summary *)

module E = Cpufree_engine
module G = Cpufree_gpu
module S = Cpufree_stencil
module D = Cpufree_dace
module Measure = Cpufree_core.Measure
module Parallel = Cpufree_core.Parallel
module J = Cpufree_core.Json
module Metrics = Cpufree_comm.Metrics
module Time = E.Time
module Serve = Cpufree_serve
module Scenario = Cpufree_core.Scenario

let gpu_counts = [ 1; 2; 4; 8 ]
let iterations = 50

let us t = Time.to_us_float t
let ms t = Time.to_ms_float t

let wall () = Unix.gettimeofday ()

let header title =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================================\n%!"

let stencil_variants = S.Variants.all

(* ---------------------------------------------------------------- *)
(* JSON result collection (`-- json` mode)                           *)
(* ---------------------------------------------------------------- *)

let json_figures : J.t list ref = ref []

(* One JSON point per scenario: simulated times are integer nanoseconds so
   the series is exact, not a formatting artifact. *)
let point ?(extra = []) ~label ~gpus (r : Measure.result) =
  J.Obj
    ([
       ("label", J.String label);
       ("gpus", J.Int gpus);
       ("iterations", J.Int r.Measure.iterations);
       ("total_ns", J.Int (Time.to_ns r.Measure.total));
       ("per_iter_ns", J.Int (Time.to_ns r.Measure.per_iter));
       ("comm_ns", J.Int (Time.to_ns r.Measure.comm));
       ("overlap_pct", J.Float (r.Measure.overlap *. 100.0));
       ("bytes_moved", J.Int r.Measure.bytes_moved);
     ]
    @ extra)

(* Run [f] as one named figure: record its points and wall-clock. *)
let figure name f =
  let t0 = wall () in
  let points, value = f () in
  json_figures :=
    J.Obj
      [
        ("figure", J.String name);
        ("wall_clock_sec", J.Float (wall () -. t0));
        ("points", J.List points);
      ]
    :: !json_figures;
  value

(* ---------------------------------------------------------------- *)
(* Scenario-grid helpers: gpus × variant sweeps through the pool     *)
(* ---------------------------------------------------------------- *)

(* Cross product in row-major (gpus-major) order, matching the printed
   tables; the pool preserves this order in its result list. *)
let stencil_grid ~problem_of =
  let cells =
    List.concat_map
      (fun gpus -> List.map (fun kind -> (gpus, kind)) stencil_variants)
      gpu_counts
  in
  let scenarios =
    List.map (fun (gpus, kind) -> S.Harness.scenario_env kind (problem_of ~gpus ~kind) ~gpus) cells
  in
  List.combine cells (S.Harness.run_many scenarios)

let variant_row_header () =
  Printf.printf "%6s" "gpus";
  List.iter (fun k -> Printf.printf " %18s" (S.Variants.name k)) stencil_variants;
  print_newline ()

(* Print a grid as one row per GPU count, one column per variant, and turn
   it into JSON points. [domain_of] adds the domain column of Fig 6.1. *)
let print_grid ?domain_of grid =
  (match domain_of with
  | None -> variant_row_header ()
  | Some _ ->
    Printf.printf "%6s %14s" "gpus" "domain";
    List.iter (fun k -> Printf.printf " %18s" (S.Variants.name k)) stencil_variants;
    print_newline ());
  List.iter
    (fun gpus ->
      Printf.printf "%6d" gpus;
      (match domain_of with
      | None -> ()
      | Some f -> Printf.printf " %14s" (S.Problem.dims_to_string (f ~gpus)));
      List.iter
        (fun ((_, _), r) -> Printf.printf " %18.2f" (us r.Measure.per_iter))
        (List.filter (fun ((g, _), _) -> g = gpus) grid);
      print_newline ())
    gpu_counts;
  List.map (fun ((gpus, kind), r) -> point ~label:(S.Variants.name kind) ~gpus r) grid

(* ---------------------------------------------------------------- *)
(* Fig 2.1b / 3.1 / 5.1b: timelines                                  *)
(* ---------------------------------------------------------------- *)

let print_filtered_timeline trace =
  let filtered = E.Trace.create () in
  List.iter
    (fun sp ->
      let keep =
        List.exists
          (fun p -> Astring.String.is_prefix ~affix:p sp.E.Trace.lane)
          [ "gpu0"; "gpu1"; "host" ]
      in
      if keep then
        E.Trace.add filtered ~lane:sp.E.Trace.lane ~label:sp.E.Trace.label ~kind:sp.E.Trace.kind
          ~t0:sp.E.Trace.t0 ~t1:sp.E.Trace.t1)
    (E.Trace.spans trace);
  print_string (E.Trace.render_ascii ~width:96 filtered)

let timeline_points label (r, trace) =
  [
    point ~label ~gpus:r.Measure.gpus r
      ~extra:[ ("spans", J.Int (List.length (E.Trace.spans trace))) ];
  ]

(* The three timeline figures are single traced scenarios; they still go
   through the pool, as one batch of three. *)
let timelines () =
  let p2d iters = S.Problem.make (S.Problem.D2 { nx = 256; ny = 256 }) ~iterations:iters in
  let run_thunks =
    [
      (fun () -> S.Harness.run_traced_env S.Variants.Overlap (p2d 3) ~gpus:8);
      (fun () -> S.Harness.run_traced_env S.Variants.Cpu_free (p2d 3) ~gpus:8);
      (fun () ->
        let app = D.Pipeline.Jacobi2d { D.Programs.nx_global = 512; ny_global = 512; tsteps = 2 } in
        D.Pipeline.run_traced_env app D.Pipeline.Baseline_mpi ~gpus:4);
    ]
  in
  match Parallel.map (fun f -> f ()) run_thunks with
  | [ overlap; cpu_free; dace ] ->
    figure "fig2.1b" (fun () ->
        header
          "Fig 2.1b  Nsight-style timeline: CPU-controlled overlapping stencil (2D 256^2, 8 \
           GPUs, 3 iterations; 2 devices shown)";
        print_filtered_timeline (snd overlap);
        (timeline_points "baseline-overlap" overlap, ()));
    figure "fig3.1" (fun () ->
        header
          "Fig 3.1 (concept)  CPU-Free execution timeline: one cooperative launch, then only \
           device activity (2D 256^2, 8 GPUs, 3 iterations; 2 devices shown)";
        print_filtered_timeline (snd cpu_free);
        (timeline_points "cpu-free" cpu_free, ()));
    figure "fig5.1b" (fun () ->
        header
          "Fig 5.1b  Timeline: distributed DaCe MPI baseline (Jacobi 2D, 4 GPUs, 2 iterations)";
        print_filtered_timeline (snd dace);
        (timeline_points "dace-baseline" dace, ()))
  | _ -> assert false

(* ---------------------------------------------------------------- *)
(* Fig 2.2: motivation — overheads and overlap                       *)
(* ---------------------------------------------------------------- *)

let fig2_2a () =
  figure "fig2.2a" (fun () ->
      let grid =
        stencil_grid ~problem_of:(fun ~gpus ~kind:_ ->
            let dims = S.Problem.weak_scale (S.Problem.D2 { nx = 256; ny = 256 }) ~gpus in
            S.Problem.make ~compute:false dims ~iterations)
      in
      header
        "Fig 2.2a  Pure communication + synchronization overhead, no computation (2D 256^2 \
         weak scaling, per-iteration time in us)";
      (print_grid grid, ()))

let fig2_2b () =
  figure "fig2.2b" (fun () ->
      let dims = S.Problem.weak_scale (S.Problem.D2 { nx = 256; ny = 256 }) ~gpus:8 in
      let problem = S.Problem.make dims ~iterations in
      let traced =
        S.Harness.run_many_traced
          (List.map (fun kind -> S.Harness.scenario_env kind problem ~gpus:8) stencil_variants)
      in
      header
        "Fig 2.2b  Communication overlap ratio and total execution time (2D 256^2 per GPU, 8 \
         GPUs)";
      Printf.printf "%-22s %12s %14s %12s %12s %14s\n" "variant" "total(ms)" "comm-wall(ms)"
        "overlap(%)" "comm(%)" "non-compute(%)";
      let points =
        List.map2
          (fun kind (r, trace) ->
            let comm_frac = Metrics.comm_fraction trace ~total:r.Measure.total *. 100.0 in
            (* The paper's "communication takes 96% of execution" counts everything
               that is not computation: API calls, synchronization, transfers. *)
            let non_compute =
              let compute = Time.to_sec_float (Metrics.compute_time trace) in
              let total = Time.to_sec_float r.Measure.total in
              if total = 0.0 then 0.0 else (total -. compute) /. total *. 100.0
            in
            Printf.printf "%-22s %12.3f %14.3f %12.1f %12.1f %14.1f\n" (S.Variants.name kind)
              (ms r.Measure.total) (ms r.Measure.comm) (r.Measure.overlap *. 100.0) comm_frac
              non_compute;
            point ~label:(S.Variants.name kind) ~gpus:8 r
              ~extra:
                [
                  ("comm_frac_pct", J.Float comm_frac); ("non_compute_pct", J.Float non_compute);
                ])
          stencil_variants traced
      in
      (points, ()))

(* ---------------------------------------------------------------- *)
(* Fig 6.1: 2D weak scaling, three domain classes                    *)
(* ---------------------------------------------------------------- *)

let weak_scaling_table ~figure_name ~title ~dims_base ~iterations =
  figure figure_name (fun () ->
      let grid =
        stencil_grid ~problem_of:(fun ~gpus ~kind:_ ->
            S.Problem.make (S.Problem.weak_scale dims_base ~gpus) ~iterations)
      in
      header title;
      let points = print_grid ~domain_of:(fun ~gpus -> S.Problem.weak_scale dims_base ~gpus) grid in
      let results = Hashtbl.create 64 in
      List.iter
        (fun ((gpus, kind), r) -> Hashtbl.replace results (S.Variants.name kind, gpus) r)
        grid;
      (points, results))

let fig6_1 () =
  let small =
    weak_scaling_table ~figure_name:"fig6.1.small"
      ~title:"Fig 6.1 (left)  2D Jacobi weak scaling, small domain 256^2/GPU (per-iter us)"
      ~dims_base:(S.Problem.D2 { nx = 256; ny = 256 })
      ~iterations
  in
  let medium =
    weak_scaling_table ~figure_name:"fig6.1.medium"
      ~title:"Fig 6.1 (middle)  2D Jacobi weak scaling, medium domain 2048^2/GPU (per-iter us)"
      ~dims_base:(S.Problem.D2 { nx = 2048; ny = 2048 })
      ~iterations
  in
  let large =
    weak_scaling_table ~figure_name:"fig6.1.large"
      ~title:"Fig 6.1 (right)  2D Jacobi weak scaling, large domain 8192^2/GPU (per-iter us)"
      ~dims_base:(S.Problem.D2 { nx = 8192; ny = 8192 })
      ~iterations
  in
  (small, medium, large)

(* ---------------------------------------------------------------- *)
(* Fig 6.2: 3D Jacobi                                                *)
(* ---------------------------------------------------------------- *)

let fig6_2 () =
  let weak =
    weak_scaling_table ~figure_name:"fig6.2.weak"
      ~title:"Fig 6.2 (left)  3D Jacobi 7pt weak scaling, 256^3/GPU (per-iter us)"
      ~dims_base:(S.Problem.D3 { nx = 256; ny = 256; nz = 256 })
      ~iterations
  in
  figure "fig6.2.nocompute" (fun () ->
      let grid =
        stencil_grid ~problem_of:(fun ~gpus ~kind:_ ->
            let dims =
              S.Problem.weak_scale (S.Problem.D3 { nx = 256; ny = 256; nz = 256 }) ~gpus
            in
            S.Problem.make ~compute:false dims ~iterations)
      in
      header
        "Fig 6.2 (middle)  3D Jacobi no-compute communication time at the largest domain \
         (us/iter)";
      (print_grid grid, ()));
  let strong =
    figure "fig6.2.strong" (fun () ->
        let grid =
          stencil_grid ~problem_of:(fun ~gpus:_ ~kind:_ ->
              S.Problem.make (S.Problem.D3 { nx = 512; ny = 512; nz = 512 }) ~iterations)
        in
        header
          "Fig 6.2 (right)  3D Jacobi strong scaling, constant 512x512x512 domain (per-iter us)";
        let points = print_grid grid in
        let strong = Hashtbl.create 16 in
        List.iter
          (fun ((gpus, kind), r) -> Hashtbl.replace strong (S.Variants.name kind, gpus) r)
          grid;
        (points, strong))
  in
  figure "fig6.2.strong-nocompute" (fun () ->
      let grid =
        stencil_grid ~problem_of:(fun ~gpus:_ ~kind:_ ->
            S.Problem.make ~compute:false (S.Problem.D3 { nx = 512; ny = 512; nz = 512 })
              ~iterations)
      in
      header
        "Fig 6.2 (right, no compute)  strong-scaling communication-only time (per-iter us)";
      (print_grid grid, ()));
  (weak, strong)

(* ---------------------------------------------------------------- *)
(* Fig 6.3: compiler-generated code                                  *)
(* ---------------------------------------------------------------- *)

let dace_arms = [ D.Pipeline.Baseline_mpi; D.Pipeline.Cpu_free ]

(* gpus × arm sweep through the pool, row-major like the tables. *)
let dace_grid ~app_of =
  let cells =
    List.concat_map (fun gpus -> List.map (fun arm -> (gpus, arm)) dace_arms) gpu_counts
  in
  let results = Parallel.map (fun (gpus, arm) -> D.Pipeline.run_env (app_of ~gpus) arm ~gpus) cells in
  List.combine cells results

let fig6_3a () =
  figure "fig6.3a" (fun () ->
      let grid =
        dace_grid ~app_of:(fun ~gpus ->
            D.Pipeline.Jacobi1d { D.Programs.n_global = (1 lsl 23) * gpus; tsteps = iterations })
      in
      header "Fig 6.3a  DaCe Jacobi 1D weak scaling, 2^23 elems/GPU (total ms and comm-wall ms)";
      Printf.printf "%6s %16s %12s %12s %16s %12s %12s\n" "gpus" "" "total" "comm" "" "total"
        "comm";
      let store = Hashtbl.create 16 in
      List.iter
        (fun gpus ->
          Printf.printf "%6d" gpus;
          List.iter
            (fun ((_, arm), r) ->
              Hashtbl.replace store (D.Pipeline.arm_name arm, gpus) r;
              Printf.printf " %16s %12.3f %12.3f" (D.Pipeline.arm_name arm) (ms r.Measure.total)
                (ms r.Measure.comm))
            (List.filter (fun ((g, _), _) -> g = gpus) grid);
          print_newline ())
        gpu_counts;
      let points =
        List.map (fun ((gpus, arm), r) -> point ~label:(D.Pipeline.arm_name arm) ~gpus r) grid
      in
      (points, store))

let fig6_3b () =
  figure "fig6.3b" (fun () ->
      let dims_of gpus = S.Problem.weak_scale (S.Problem.D2 { nx = 2048; ny = 2048 }) ~gpus in
      let grid =
        dace_grid ~app_of:(fun ~gpus ->
            let nx, ny =
              match dims_of gpus with S.Problem.D2 { nx; ny } -> (nx, ny) | _ -> assert false
            in
            D.Pipeline.Jacobi2d { D.Programs.nx_global = nx; ny_global = ny; tsteps = iterations })
      in
      header "Fig 6.3b  DaCe Jacobi 2D weak scaling, 2048^2/GPU (total ms; strided columns)";
      Printf.printf "%6s %14s %16s %12s %16s %12s\n" "gpus" "domain" "" "total" "" "total";
      let store = Hashtbl.create 16 in
      List.iter
        (fun gpus ->
          Printf.printf "%6d %14s" gpus (S.Problem.dims_to_string (dims_of gpus));
          List.iter
            (fun ((_, arm), r) ->
              Hashtbl.replace store (D.Pipeline.arm_name arm, gpus) r;
              Printf.printf " %16s %12.3f" (D.Pipeline.arm_name arm) (ms r.Measure.total))
            (List.filter (fun ((g, _), _) -> g = gpus) grid);
          print_newline ())
        gpu_counts;
      (* Weak-scaling efficiency of the CPU-Free arm (paper: 81.2%). *)
      (match
         (Hashtbl.find_opt store ("dace-cpu-free", 1), Hashtbl.find_opt store ("dace-cpu-free", 8))
       with
      | Some (r1 : Measure.result), Some r8 ->
        Printf.printf "CPU-Free weak scaling efficiency at 8 GPUs: %.1f%%\n"
          (Time.to_sec_float r1.Measure.total /. Time.to_sec_float r8.Measure.total *. 100.0)
      | _ -> ());
      let points =
        List.map (fun ((gpus, arm), r) -> point ~label:(D.Pipeline.arm_name arm) ~gpus r) grid
      in
      (points, store))

(* ---------------------------------------------------------------- *)
(* Fig S: inter- vs intra-node scale-out                             *)
(* ---------------------------------------------------------------- *)

module Topology = Cpufree_machine.Topology

(* The device-initiated arms, where fabric latency is the dominant term and
   the single-switch vs NIC+InfiniBand difference shows undiluted. *)
let scaleout_variants = [ S.Variants.Nvshmem; S.Variants.Cpu_free ]

(* Weak-scale the small 2D domain past one NVSwitch: the same GPU count on a
   single (idealized) switch vs split across DGX nodes at 8 GPUs/node. Halo
   pairs that land on different nodes pay the PCIe attach twice plus the IB
   hop and contend for the NIC, so the gap between the two series is the
   price of scale-out that Figure 6.1 (single-node by construction) cannot
   show. *)
let fig_scaleout ~smoke () =
  figure "fig.scaleout" (fun () ->
      let counts = if smoke then [ 8; 16 ] else [ 8; 16; 32 ] in
      let iters = if smoke then 10 else 20 in
      let base = S.Problem.D2 { nx = 256; ny = 256 } in
      let cells =
        List.concat_map
          (fun gpus ->
            let topologies =
              (Topology.Hgx, 1)
              ::
              (if gpus >= 16 then [ (Topology.Dgx { nodes = gpus / 8 }, gpus / 8) ] else [])
            in
            List.concat_map
              (fun (topology, nodes) ->
                List.map (fun kind -> (gpus, topology, nodes, kind)) scaleout_variants)
              topologies)
          counts
      in
      let scenarios =
        List.map
          (fun (gpus, topology, _nodes, kind) ->
            let dims = S.Problem.weak_scale base ~gpus in
            S.Harness.scenario_env
              ~env:(Cpufree_core.Sim_env.make ~topology ())
              kind (S.Problem.make dims ~iterations:iters) ~gpus)
          cells
      in
      let grid = List.combine cells (S.Harness.run_many scenarios) in
      header
        "Fig S  Scale-out: 2D Jacobi weak scaling, 256^2/GPU, single NVSwitch vs DGX cluster \
         (8 GPUs/node, InfiniBand spine; per-iter us)";
      Printf.printf "%6s %6s %10s" "gpus" "nodes" "topology";
      List.iter (fun k -> Printf.printf " %18s" (S.Variants.name k)) scaleout_variants;
      print_newline ();
      let row_keys =
        List.sort_uniq compare (List.map (fun (g, t, n, _) -> (g, t, n)) cells)
      in
      List.iter
        (fun (gpus, topology, nodes) ->
          Printf.printf "%6d %6d %10s" gpus nodes (Topology.spec_to_string topology);
          List.iter
            (fun ((_, _, _, _), r) -> Printf.printf " %18.2f" (us r.Measure.per_iter))
            (List.filter (fun ((g, t, n, _), _) -> (g, t, n) = (gpus, topology, nodes)) grid);
          print_newline ())
        row_keys;
      let points =
        List.map
          (fun ((gpus, topology, nodes, kind), r) ->
            point ~label:(S.Variants.name kind) ~gpus r
              ~extra:
                [
                  ("topology", J.String (Topology.spec_to_string topology));
                  ("nodes", J.Int nodes);
                ])
          grid
      in
      (points, ()))

(* Documented schema of the fig.scaleout series: every point carries the
   machine shape, and the figure must actually exercise scale-out — at least
   one point with >= 16 GPUs spread across >= 2 nodes. *)
let validate_scaleout_doc doc =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let field kvs name = List.assoc_opt name kvs in
  let point_shape i p =
    match p with
    | J.Obj kvs -> (
      match (field kvs "topology", field kvs "nodes", field kvs "gpus") with
      | Some (J.String _), Some (J.Int _), Some (J.Int _) -> Ok ()
      | _ -> fail "scaleout point %d: needs string \"topology\" and int \"nodes\"/\"gpus\"" i)
    | _ -> fail "scaleout point %d: not an object" i
  in
  let multi_node p =
    match p with
    | J.Obj kvs -> (
      match (field kvs "nodes", field kvs "gpus") with
      | Some (J.Int n), Some (J.Int g) -> n >= 2 && g >= 16
      | _ -> false)
    | _ -> false
  in
  match doc with
  | J.Obj kvs -> (
    match field kvs "figures" with
    | Some (J.List figs) -> (
      let scaleout =
        List.filter_map
          (function
            | J.Obj f when field f "figure" = Some (J.String "fig.scaleout") -> Some f
            | _ -> None)
          figs
      in
      match scaleout with
      | [ fig ] -> (
        match field fig "points" with
        | Some (J.List (_ :: _ as pts)) ->
          let rec go i = function
            | [] -> Ok ()
            | p :: rest -> (match point_shape i p with Ok () -> go (i + 1) rest | e -> e)
          in
          (match go 0 pts with
          | Error _ as e -> e
          | Ok () ->
            if List.exists multi_node pts then Ok ()
            else fail "fig.scaleout has no multi-node point (>= 16 GPUs on >= 2 nodes)")
        | _ -> fail "fig.scaleout: missing or empty points list")
      | l -> fail "expected exactly one fig.scaleout figure, found %d" (List.length l))
    | _ -> fail "document has no figures list")
  | _ -> fail "document is not an object"

(* ---------------------------------------------------------------- *)
(* Fig C: chaos — fault intensity vs completion time / recovery       *)
(* ---------------------------------------------------------------- *)

module Fault = Cpufree_fault.Fault

(* One host-driven scheme, one discrete device-initiated scheme, and the
   persistent CPU-free scheme: the sweep shows how each degrades as the
   fabric gets lossier and one device lags. *)
let chaos_variants = [ S.Variants.Copy; S.Variants.Nvshmem; S.Variants.Cpu_free ]

let chaos_seed = 1234

(* Sweep {!Fault.preset} intensity over the three schemes on a fixed seed.
   Intensity 0 is a fault-free control run through the same chaos machinery
   (plan active, nothing fires), so the "recovery overhead" column reads
   directly as time relative to that row. Every cell is bit-identical across
   repeats and across CPUFREE_PDES modes. *)
let fig_chaos ~smoke () =
  figure "fig.chaos" (fun () ->
      let intensities = if smoke then [ 0.0; 1.0 ] else [ 0.0; 0.5; 1.0; 2.0; 4.0 ] in
      let iters = if smoke then 10 else 30 in
      let gpus = if smoke then 4 else 8 in
      let problem = S.Problem.make (S.Problem.D2 { nx = 512; ny = 512 }) ~iterations:iters in
      let cells =
        List.concat_map (fun i -> List.map (fun k -> (i, k)) chaos_variants) intensities
      in
      let runs =
        Parallel.map
          (fun (intensity, kind) ->
            S.Harness.run_chaos_env
              ~env:(Cpufree_core.Sim_env.make ~faults:(Fault.preset ~intensity)
                      ~fault_seed:chaos_seed ())
              kind problem ~gpus)
          cells
      in
      let grid = List.combine cells runs in
      header
        (Printf.sprintf
           "Fig C  Chaos: 2D Jacobi 512^2 on %d GPUs under injected faults (seed %d); total us \
            (ok|AB), deliveries resent"
           gpus chaos_seed);
      Printf.printf "%9s" "intensity";
      List.iter (fun k -> Printf.printf " %22s" (S.Variants.name k)) chaos_variants;
      print_newline ();
      List.iter
        (fun intensity ->
          Printf.printf "%9.2f" intensity;
          List.iter
            (fun ((i, _), cr) ->
              if i = intensity then begin
                let c = cr.S.Harness.chaos in
                Printf.printf " %12.2f %s r=%-4d" (us c.Measure.base.Measure.total)
                  (if c.Measure.completed then "ok" else "AB")
                  c.Measure.resent
              end)
            grid;
          print_newline ())
        intensities;
      let points =
        List.map
          (fun ((intensity, kind), cr) ->
            let c = cr.S.Harness.chaos in
            let min_progress =
              Array.fold_left Stdlib.min c.Measure.base.Measure.iterations cr.S.Harness.progress
            in
            point ~label:(S.Variants.name kind) ~gpus c.Measure.base
              ~extra:
                [
                  ("intensity", J.Float intensity);
                  ("fault_seed", J.Int chaos_seed);
                  ("completed", J.Bool c.Measure.completed);
                  ("min_progress", J.Int min_progress);
                  ("dropped", J.Int c.Measure.dropped);
                  ("delayed", J.Int c.Measure.delayed);
                  ("resent", J.Int c.Measure.resent);
                  ("retried", J.Int c.Measure.retried);
                ])
          grid
      in
      (points, ()))

(* Documented schema of the fig.chaos series: every point carries the fault
   intensity, seed, completion flag and recovery counters; the sweep must
   include a fault-free control (intensity 0, completed) and at least one
   genuinely faulty point. *)
let validate_chaos_doc doc =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let field kvs name = List.assoc_opt name kvs in
  let point_shape i p =
    match p with
    | J.Obj kvs -> (
      match
        ( field kvs "intensity",
          field kvs "fault_seed",
          field kvs "completed",
          field kvs "dropped",
          field kvs "resent",
          field kvs "retried",
          field kvs "min_progress" )
      with
      | ( Some (J.Float _),
          Some (J.Int _),
          Some (J.Bool _),
          Some (J.Int _),
          Some (J.Int _),
          Some (J.Int _),
          Some (J.Int _) ) ->
        Ok ()
      | _ ->
        fail
          "chaos point %d: needs float \"intensity\", int \"fault_seed\", bool \"completed\", \
           int \"dropped\"/\"resent\"/\"retried\"/\"min_progress\""
          i)
    | _ -> fail "chaos point %d: not an object" i
  in
  let has pred pts = List.exists pred pts in
  let control = function
    | J.Obj kvs ->
      field kvs "intensity" = Some (J.Float 0.0) && field kvs "completed" = Some (J.Bool true)
    | _ -> false
  in
  let faulty = function
    | J.Obj kvs -> (match field kvs "intensity" with Some (J.Float i) -> i > 0.0 | _ -> false)
    | _ -> false
  in
  match doc with
  | J.Obj kvs -> (
    match field kvs "figures" with
    | Some (J.List figs) -> (
      let chaos =
        List.filter_map
          (function
            | J.Obj f when field f "figure" = Some (J.String "fig.chaos") -> Some f
            | _ -> None)
          figs
      in
      match chaos with
      | [ fig ] -> (
        match field fig "points" with
        | Some (J.List (_ :: _ as pts)) ->
          let rec go i = function
            | [] -> Ok ()
            | p :: rest -> (match point_shape i p with Ok () -> go (i + 1) rest | e -> e)
          in
          (match go 0 pts with
          | Error _ as e -> e
          | Ok () ->
            if not (has control pts) then
              fail "fig.chaos has no completed fault-free control point (intensity 0)"
            else if not (has faulty pts) then fail "fig.chaos has no point with intensity > 0"
            else Ok ())
        | _ -> fail "fig.chaos: missing or empty points list")
      | l -> fail "expected exactly one fig.chaos figure, found %d" (List.length l))
    | _ -> fail "document has no figures list")
  | _ -> fail "document is not an object"

(* ---------------------------------------------------------------- *)
(* Fig R: fail-stop kills and checkpoint/restart recovery             *)
(* ---------------------------------------------------------------- *)

let recovery_seed = 77

let recovery_modes : Cpufree_core.Sim_env.pdes list = [ `Seq; `Windowed; `Adaptive; `Optimistic ]

(* Everything the self-healing layer decides about one run; bit-equality of
   this digest across the four PDES drivers is the recovery FATAL gate. *)
let resilient_digest (r : S.Harness.resilient_run) =
  ( Time.to_ns r.S.Harness.r_total,
    Time.to_ns r.S.Harness.r_restart_cost,
    r.S.Harness.r_killed,
    r.S.Harness.r_survivors,
    r.S.Harness.r_checkpoint,
    r.S.Harness.r_work_saved,
    (r.S.Harness.r_completed, r.S.Harness.r_degraded),
    Array.to_list r.S.Harness.r_first.S.Harness.progress,
    match r.S.Harness.r_resume with
    | None -> []
    | Some res -> Array.to_list res.S.Harness.progress )

(* Time-to-recover and completed work of the checkpoint/restart harness, as
   a function of the checkpoint interval and the kill time (both relative to
   a fault-free control of the same workload). Two FATAL gates guard the
   fail-stop layer's determinism:
   - the fault-free control must be byte-identical to the plain (no chaos
     machinery at all) driver in all four CPUFREE_PDES modes, and
   - every recovery scenario's full digest must be bit-identical across the
     four modes. *)
let fig_recovery ~smoke () =
  figure "fig.recovery" (fun () ->
      let gpus = 4 in
      let iters = if smoke then 24 else 48 in
      let problem = S.Problem.make (S.Problem.D2 { nx = 96; ny = 96 }) ~iterations:iters in
      let kind = S.Variants.Cpu_free in
      let kname = S.Variants.name kind in
      let plain_total pdes =
        (S.Harness.run_env ~env:(Cpufree_core.Sim_env.make ~pdes ()) kind problem ~gpus)
          .Measure.total
      in
      let control_total pdes =
        let cr =
          S.Harness.run_chaos_env
            ~env:
              (Cpufree_core.Sim_env.make ~faults:Fault.none ~fault_seed:recovery_seed ~pdes ())
            kind problem ~gpus
        in
        if not cr.S.Harness.chaos.Measure.completed then begin
          Printf.eprintf "[recovery] FATAL: fault-free control aborted\n%!";
          exit 1
        end;
        cr.S.Harness.chaos.Measure.base.Measure.total
      in
      let seq_plain = plain_total `Seq in
      List.iter
        (fun pdes ->
          let p = plain_total pdes and c = control_total pdes in
          if not (Time.equal p seq_plain && Time.equal c seq_plain) then begin
            Printf.eprintf
              "[recovery] FATAL: fault-free control differs under %s (plain %d ns, chaos %d \
               ns, seq %d ns) — the fail-stop layer perturbed an unfaulted run\n%!"
              (Cpufree_core.Sim_env.pdes_to_string pdes)
              (Time.to_ns p) (Time.to_ns c) (Time.to_ns seq_plain);
            exit 1
          end)
        recovery_modes;
      let control_ns = Time.to_ns seq_plain in
      let kill_fracs = if smoke then [ 0.4 ] else [ 0.25; 0.6 ] in
      let scratch_k = 2 * iters in
      let intervals = (if smoke then [ 2 ] else [ 1; 2; 4; 8 ]) @ [ scratch_k ] in
      header
        (Printf.sprintf
           "Fig R  Fail-stop recovery: 2D Jacobi 96^2 x %d iters on %d GPUs, kill one GPU; \
            control %.2f us (identical in all four PDES modes)"
           iters gpus (us seq_plain));
      Printf.printf "  %8s %10s %10s %9s %10s %12s %12s %6s\n" "kill_us" "ckpt_every"
        "checkpoint" "saved_it" "restart_us" "end2end_us" "vs_scratch" "status";
      let points = ref [] in
      List.iter
        (fun frac ->
          let kill_ns = int_of_float (float_of_int control_ns *. frac) in
          let spec = { Fault.none with Fault.kills = [ (1, Time.ns kill_ns) ] } in
          let scratch_total = ref None in
          List.iter
            (fun k ->
              let run pdes =
                S.Harness.run_resilient
                  ~env:
                    (Cpufree_core.Sim_env.make ~faults:spec ~fault_seed:recovery_seed ~pdes ())
                  ~checkpoint_every:k kind problem ~gpus
              in
              let r = run `Seq in
              let d = resilient_digest r in
              List.iter
                (fun pdes ->
                  if pdes <> `Seq && resilient_digest (run pdes) <> d then begin
                    Printf.eprintf
                      "[recovery] FATAL: recovery digest under %s differs from sequential \
                       (kill at %d ns, checkpoint every %d)\n%!"
                      (Cpufree_core.Sim_env.pdes_to_string pdes)
                      kill_ns k;
                    exit 1
                  end)
                recovery_modes;
              let scratch = k >= scratch_k in
              if scratch then scratch_total := Some r.S.Harness.r_total;
              let vs_scratch =
                match !scratch_total with
                | Some s when not scratch && Time.(s > zero) ->
                  Printf.sprintf "%+.1f%%"
                    ((us r.S.Harness.r_total -. us s) /. us s *. 100.0)
                | _ -> "-"
              in
              Printf.printf "  %8.2f %10s %9d  %8d %10.2f %12.2f %12s %6s\n"
                (float_of_int kill_ns /. 1e3)
                (if scratch then "scratch" else string_of_int k)
                r.S.Harness.r_checkpoint r.S.Harness.r_work_saved
                (us r.S.Harness.r_restart_cost) (us r.S.Harness.r_total) vs_scratch
                (if r.S.Harness.r_completed then
                   if r.S.Harness.r_degraded then "ok*" else "ok"
                 else "AB");
              points :=
                point ~label:kname ~gpus r.S.Harness.r_first.S.Harness.chaos.Measure.base
                  ~extra:
                    [
                      ("fault_seed", J.Int recovery_seed);
                      ("kill_us", J.Float (float_of_int kill_ns /. 1e3));
                      ("checkpoint_every", J.Int k);
                      ("scratch", J.Bool scratch);
                      ( "killed_pe",
                        J.Int (match r.S.Harness.r_killed with Some pe -> pe | None -> -1) );
                      ("survivors", J.Int r.S.Harness.r_survivors);
                      ("checkpoint", J.Int r.S.Harness.r_checkpoint);
                      ("work_saved", J.Int r.S.Harness.r_work_saved);
                      ("restart_us", J.Float (us r.S.Harness.r_restart_cost));
                      ("end_to_end_us", J.Float (us r.S.Harness.r_total));
                      ("control_us", J.Float (us seq_plain));
                      ("completed", J.Bool r.S.Harness.r_completed);
                      ("degraded", J.Bool r.S.Harness.r_degraded);
                    ]
                :: !points)
            (* Scratch first so the vs_scratch column can reference it. *)
            (scratch_k :: List.filter (fun k -> k <> scratch_k) intervals))
        kill_fracs;
      Printf.printf "  (ok* = completed degraded on the survivors)\n";
      (List.rev !points, ()))

(* Documented schema of the fig.recovery series. Beyond the field shape, the
   figure must demonstrate actual self-healing: at least one point completed
   degraded on the survivors, and at least one checkpointed point strictly
   beats the restart-from-scratch point for the same kill time. *)
let validate_recovery_doc doc =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let field kvs name = List.assoc_opt name kvs in
  let point_shape i p =
    match p with
    | J.Obj kvs -> (
      match
        ( field kvs "kill_us",
          field kvs "checkpoint_every",
          field kvs "scratch",
          field kvs "work_saved",
          field kvs "end_to_end_us",
          field kvs "completed",
          field kvs "degraded" )
      with
      | ( Some (J.Float _),
          Some (J.Int _),
          Some (J.Bool _),
          Some (J.Int _),
          Some (J.Float _),
          Some (J.Bool _),
          Some (J.Bool _) ) ->
        Ok ()
      | _ ->
        fail
          "recovery point %d: needs float \"kill_us\"/\"end_to_end_us\", int \
           \"checkpoint_every\"/\"work_saved\", bool \"scratch\"/\"completed\"/\"degraded\""
          i)
    | _ -> fail "recovery point %d: not an object" i
  in
  let healed = function
    | J.Obj kvs ->
      field kvs "completed" = Some (J.Bool true) && field kvs "degraded" = Some (J.Bool true)
    | _ -> false
  in
  let beats_scratch pts p =
    match p with
    | J.Obj kvs -> (
      match (field kvs "kill_us", field kvs "scratch", field kvs "work_saved",
             field kvs "end_to_end_us") with
      | Some kill, Some (J.Bool false), Some (J.Int saved), Some (J.Float t) when saved > 0 ->
        List.exists
          (function
            | J.Obj q -> (
              field q "kill_us" = Some kill
              && field q "scratch" = Some (J.Bool true)
              && match field q "end_to_end_us" with Some (J.Float s) -> t < s | _ -> false)
            | _ -> false)
          pts
      | _ -> false)
    | _ -> false
  in
  match doc with
  | J.Obj kvs -> (
    match field kvs "figures" with
    | Some (J.List figs) -> (
      let recovery =
        List.filter_map
          (function
            | J.Obj f when field f "figure" = Some (J.String "fig.recovery") -> Some f
            | _ -> None)
          figs
      in
      match recovery with
      | [ fig ] -> (
        match field fig "points" with
        | Some (J.List (_ :: _ as pts)) ->
          let rec go i = function
            | [] -> Ok ()
            | p :: rest -> (match point_shape i p with Ok () -> go (i + 1) rest | e -> e)
          in
          (match go 0 pts with
          | Error _ as e -> e
          | Ok () ->
            if not (List.exists healed pts) then
              fail "fig.recovery has no point that completed degraded on the survivors"
            else if not (List.exists (beats_scratch pts) pts) then
              fail
                "fig.recovery has no checkpointed point that beats restart-from-scratch for \
                 the same kill time"
            else Ok ())
        | _ -> fail "fig.recovery: missing or empty points list")
      | l -> fail "expected exactly one fig.recovery figure, found %d" (List.length l))
    | _ -> fail "document has no figures list")
  | _ -> fail "document is not an object"

(* ---------------------------------------------------------------- *)
(* Headline speedups                                                  *)
(* ---------------------------------------------------------------- *)

let pct_line label paper measured =
  Printf.printf "  %-58s paper: %6.1f%%   measured: %6.1f%%\n" label paper measured;
  J.Obj
    [ ("comparison", J.String label); ("paper_pct", J.Float paper); ("measured_pct", J.Float measured) ]

let headline (small, medium, large) dace1d dace2d =
  figure "headline" (fun () ->
      header "Headline speedups: paper vs measured (speedup% = (Tb - To) / Tb * 100)";
      let get tbl kind gpus : Measure.result = Hashtbl.find tbl (S.Variants.name kind, gpus) in
      let sp b o = Measure.speedup_pct ~baseline:b ~ours:o in
      let points = ref [] in
      let line label paper measured = points := pct_line label paper measured :: !points in
      line "2D small, CPU-Free vs best baseline (NVSHMEM), 8 GPUs" 41.6
        (sp (get small S.Variants.Nvshmem 8) (get small S.Variants.Cpu_free 8));
      line "2D medium, CPU-Free vs best baseline (NVSHMEM), 8 GPUs" 48.2
        (sp (get medium S.Variants.Nvshmem 8) (get medium S.Variants.Cpu_free 8));
      line "2D small, CPU-Free vs Baseline Copy (fully CPU-controlled)" 96.2
        (sp (get small S.Variants.Copy 8) (get small S.Variants.Cpu_free 8));
      line "2D medium, CPU-Free vs Baseline Overlap" 95.7
        (sp (get medium S.Variants.Overlap 8) (get medium S.Variants.Cpu_free 8));
      line "2D large, multi-GPU PERKS vs best baseline, 8 GPUs" 18.8
        (sp (get large S.Variants.Nvshmem 8) (get large S.Variants.Perks 8));
      let d1 arm g : Measure.result = Hashtbl.find dace1d (arm, g) in
      let d2 arm g : Measure.result = Hashtbl.find dace2d (arm, g) in
      line "DaCe Jacobi 1D, CPU-Free vs MPI baseline (total), 8 GPUs" 44.5
        (sp (d1 "dace-baseline" 8) (d1 "dace-cpu-free" 8));
      let comm_sp =
        let b = (d1 "dace-baseline" 8).Measure.comm and o = (d1 "dace-cpu-free" 8).Measure.comm in
        (Time.to_sec_float b -. Time.to_sec_float o) /. Time.to_sec_float b *. 100.0
      in
      line "DaCe Jacobi 1D, communication latency reduction, 8 GPUs" 26.8 comm_sp;
      line "DaCe Jacobi 2D, CPU-Free vs MPI baseline (total), 8 GPUs" 96.8
        (sp (d2 "dace-baseline" 8) (d2 "dace-cpu-free" 8));
      (List.rev !points, ()))

(* ---------------------------------------------------------------- *)
(* Supplementary: convergence-checked iterations                     *)
(* ---------------------------------------------------------------- *)

let supplementary_norm () =
  figure "supplementary.norm" (fun () ->
      let kinds = [ S.Variants.Copy; S.Variants.Nvshmem; S.Variants.Cpu_free ] in
      let dims = S.Problem.weak_scale (S.Problem.D2 { nx = 2048; ny = 2048 }) ~gpus:8 in
      let cells = List.concat_map (fun kind -> [ (kind, None); (kind, Some 1) ]) kinds in
      let results =
        S.Harness.run_many
          (List.map
             (fun (kind, norm) ->
               S.Harness.scenario_env kind (S.Problem.make ?norm_every:norm dims ~iterations:30)
                 ~gpus:8)
             cells)
      in
      header
        "Supplementary  Residual check every iteration (NVIDIA-sample style): host-round-trip \
         allreduce vs device-side allreduce (2D medium, 8 GPUs, per-iter us)";
      Printf.printf "%-22s %14s %16s %12s\n" "variant" "plain" "with norm" "penalty";
      let grid = List.combine cells results in
      let find kind norm = List.assoc (kind, norm) grid in
      let points =
        List.concat_map
          (fun kind ->
            let plain = find kind None and normed = find kind (Some 1) in
            Printf.printf "%-22s %14.2f %16.2f %11.2f%%\n" (S.Variants.name kind)
              (us plain.Measure.per_iter) (us normed.Measure.per_iter)
              ((Time.to_sec_float normed.Measure.per_iter
               /. Time.to_sec_float plain.Measure.per_iter
               -. 1.0)
              *. 100.0);
            [
              point ~label:(S.Variants.name kind) ~gpus:8 plain;
              point ~label:(S.Variants.name kind ^ "+norm") ~gpus:8 normed;
            ])
          kinds
      in
      (points, ()))

(* ---------------------------------------------------------------- *)
(* Ablations: design choices called out in DESIGN.md                 *)
(* ---------------------------------------------------------------- *)

let ablations () =
  let app = D.Pipeline.Jacobi2d { D.Programs.nx_global = 4096; ny_global = 4096; tsteps = 20 } in
  figure "ablation.A.relaxed-barriers" (fun () ->
      let run_relax relax =
        let built = D.Pipeline.compile ~relax app D.Pipeline.Cpu_free ~gpus:8 in
        Measure.run_env
          ~label:(if relax then "relaxed (this work)" else "naive (upstream)")
          ~gpus:8 ~iterations:20 built.D.Exec.program
      in
      match Parallel.map run_relax [ true; false ] with
      | [ relaxed; naive ] ->
        header "Ablation A  Persistent-fusion barrier placement (§5.1): relaxed vs upstream-naive";
        Printf.printf "  %-24s per-iter %8.2f us\n" relaxed.Measure.label
          (us relaxed.Measure.per_iter);
        Printf.printf "  %-24s per-iter %8.2f us\n" naive.Measure.label (us naive.Measure.per_iter);
        Printf.printf "  relaxation speedup: %.1f%%\n"
          (Measure.speedup_pct ~baseline:naive ~ours:relaxed);
        ( [
            point ~label:relaxed.Measure.label ~gpus:8 relaxed;
            point ~label:naive.Measure.label ~gpus:8 naive;
          ],
          () )
      | _ -> assert false);
  figure "ablation.B.tb-specialization" (fun () ->
      let run_spec specialize_tb =
        let built = D.Pipeline.compile ~specialize_tb app D.Pipeline.Cpu_free ~gpus:8 in
        Measure.run_env
          ~label:(if specialize_tb then "TB-specialized" else "single-thread + grid sync")
          ~gpus:8 ~iterations:20 built.D.Exec.program
      in
      match Parallel.map run_spec [ false; true ] with
      | [ conservative; specialized ] ->
        header
          "Ablation B  In-kernel communication scheduling (§5.3.2/§5.4): single-thread vs      \
           thread-block-specialized (this work implements the paper's future work)";
        Printf.printf "  %-28s per-iter %8.2f us  overlap %5.1f%%\n" conservative.Measure.label
          (us conservative.Measure.per_iter)
          (conservative.Measure.overlap *. 100.0);
        Printf.printf "  %-28s per-iter %8.2f us  overlap %5.1f%%\n" specialized.Measure.label
          (us specialized.Measure.per_iter)
          (specialized.Measure.overlap *. 100.0);
        Printf.printf "  specialization speedup: %.1f%%\n"
          (Measure.speedup_pct ~baseline:conservative ~ours:specialized);
        ( [
            point ~label:conservative.Measure.label ~gpus:8 conservative;
            point ~label:specialized.Measure.label ~gpus:8 specialized;
          ],
          () )
      | _ -> assert false);
  figure "ablation.C.co-resident-kernels" (fun () ->
      let kinds = [ S.Variants.Cpu_free; S.Variants.Cpu_free_multi ] in
      let dims = S.Problem.weak_scale (S.Problem.D2 { nx = 2048; ny = 2048 }) ~gpus:8 in
      let problem = S.Problem.make dims ~iterations:50 in
      let results =
        S.Harness.run_many (List.map (fun kind -> S.Harness.scenario_env kind problem ~gpus:8) kinds)
      in
      header
        "Ablation C  One specialized kernel vs two co-resident kernels (§4 alternative design;  \
            paper: no significant difference)";
      let points =
        List.map2
          (fun kind r ->
            Printf.printf "  %-22s per-iter %8.2f us\n" (S.Variants.name kind)
              (us r.Measure.per_iter);
            point ~label:(S.Variants.name kind) ~gpus:8 r)
          kinds results
      in
      (points, ()));
  figure "ablation.D.perks-capacity" (fun () ->
      let arch = G.Arch.a100_hgx in
      let sizes = [ 1024; 2048; 4096; 8192; 16384 ] in
      let cells =
        List.concat_map
          (fun nx -> [ (nx, S.Variants.Perks); (nx, S.Variants.Cpu_free) ])
          sizes
      in
      let results =
        S.Harness.run_many
          (List.map
             (fun (nx, kind) ->
               let dims = S.Problem.weak_scale (S.Problem.D2 { nx; ny = nx }) ~gpus:8 in
               S.Harness.scenario_env kind (S.Problem.make dims ~iterations:20) ~gpus:8)
             cells)
      in
      header
        "Ablation D  PERKS caching vs per-GPU domain size (2D, 8 GPUs): fitting domains are \
         cached almost entirely; over-capacity domains fall back toward plain traffic";
      Printf.printf "  %12s %12s %14s %14s\n" "domain/GPU" "cache-frac" "perks (us)"
        "cpu-free (us)";
      let grid = List.combine cells results in
      let points =
        List.concat_map
          (fun nx ->
            let perks = List.assoc (nx, S.Variants.Perks) grid in
            let free = List.assoc (nx, S.Variants.Cpu_free) grid in
            let cache_frac = G.Kernel.perks_cache_fraction arch ~elems:(nx * nx) in
            Printf.printf "  %9dx%-3d %12.2f %14.2f %14.2f\n" nx nx cache_frac
              (us perks.Measure.per_iter) (us free.Measure.per_iter);
            [
              point
                ~label:(Printf.sprintf "perks/%d" nx)
                ~gpus:8 perks
                ~extra:[ ("cache_frac", J.Float cache_frac) ];
              point ~label:(Printf.sprintf "cpu-free/%d" nx) ~gpus:8 free;
            ])
          sizes
      in
      (points, ()))

(* ---------------------------------------------------------------- *)
(* Fig K: collectives — device-initiated vs CPU-driven allreduce      *)
(* ---------------------------------------------------------------- *)

module Nv = Cpufree_comm.Nvshmem
module Coll = Cpufree_comm.Collective
module Interconnect = G.Interconnect

(* Allreduce of one scalar per GPU on a cluster-scale machine: the
   device-initiated schedule (signaled puts inside persistent kernels)
   against the same schedule driven by the host (memcpy_async +
   stream_synchronize per step) — the paper's control-path comparison,
   taken beyond Jacobi to the collective itself. Every run also reports
   how many endpoint pairs the fabric actually routed: on a 1024-GPU
   machine the tree touches a sliver of the 10^6 possible pairs, which is
   what makes the lazy tables pay off. *)

let collective_expected gpus = float_of_int (gpus * (gpus + 1) / 2)

let collective_device ~spec ~algorithm ~gpus =
  let eng = E.Engine.create () in
  let ctx =
    G.Runtime.create eng ~env:(Cpufree_core.Sim_env.make ~topology:spec ()) ~num_gpus:gpus ()
  in
  let nv = Nv.init ctx in
  let coll = Coll.create ~algorithm nv ~label:"coll" in
  let expected = collective_expected gpus in
  let ok = ref true in
  for pe = 0 to gpus - 1 do
    ignore
      (E.Engine.spawn eng ~name:(Printf.sprintf "pe%d" pe) (fun () ->
           if Coll.allreduce_sum coll ~pe (float_of_int (pe + 1)) <> expected then ok := false)
        : E.Engine.process)
  done;
  E.Engine.run eng;
  if not !ok then begin
    Printf.eprintf "[collective] FATAL: device allreduce result mismatch\n%!";
    exit 1
  end;
  (E.Engine.now eng, G.Runtime.net ctx)

let collective_host ~spec ~algorithm ~gpus =
  let eng = E.Engine.create () in
  let ctx =
    G.Runtime.create eng ~env:(Cpufree_core.Sim_env.make ~topology:spec ()) ~num_gpus:gpus ()
  in
  let out = ref [||] in
  ignore
    (E.Engine.spawn eng ~name:"host" (fun () ->
         out :=
           Coll.host_allreduce_sum ctx ~algorithm ~label:"coll"
             (Array.init gpus (fun g -> float_of_int (g + 1))))
      : E.Engine.process);
  E.Engine.run eng;
  let expected = collective_expected gpus in
  if Array.length !out <> gpus || Array.exists (fun v -> v <> expected) !out then begin
    Printf.eprintf "[collective] FATAL: host allreduce result mismatch\n%!";
    exit 1
  end;
  (E.Engine.now eng, G.Runtime.net ctx)

let fig_collective ~smoke () =
  figure "fig.collective" (fun () ->
      let counts = if smoke then [ 8; 256 ] else [ 8; 64; 256; 1024 ] in
      let topologies gpus =
        (if gpus <= 8 then Topology.Hgx else Topology.Dgx { nodes = gpus / 8 })
        :: [
             Topology.Fat_tree { arity = 4; rails = 2; gpus_per_node = 8 };
             Topology.Dragonfly { a = 4; p = 4; h = 2; gpus_per_node = 8 };
           ]
      in
      (* Dense and ring are n^2/n-step schedules — illustrative at small n,
         pointless wall-clock at cluster scale, where the log-depth
         schedules are the ones anyone would run. *)
      let algorithms gpus =
        if smoke then if gpus <= 8 then [ Coll.Dense; Coll.Tree ] else [ Coll.Tree; Coll.Doubling ]
        else if gpus <= 64 then [ Coll.Dense; Coll.Ring; Coll.Tree; Coll.Doubling ]
        else [ Coll.Tree; Coll.Doubling ]
      in
      let cells =
        List.concat_map
          (fun gpus ->
            List.concat_map
              (fun spec -> List.map (fun alg -> (gpus, spec, alg)) (algorithms gpus))
              (topologies gpus))
          counts
      in
      let runs =
        Parallel.map
          (fun (gpus, spec, alg) ->
            let dev_t, dev_net = collective_device ~spec ~algorithm:alg ~gpus in
            let host_t, host_net = collective_host ~spec ~algorithm:alg ~gpus in
            (dev_t, dev_net, host_t, host_net))
          cells
      in
      let grid = List.combine cells runs in
      header
        "Fig K  Collectives: device-initiated vs CPU-driven allreduce, one scalar per GPU \
         (total us; pairs = endpoint pairs routed of gpus^2 possible)";
      Printf.printf "%6s %16s %10s %12s %12s %8s %12s %10s\n" "gpus" "topology" "algorithm"
        "device(us)" "host(us)" "speedup" "pairs-dev" "routing";
      let points =
        List.map
          (fun ((gpus, spec, alg), (dev_t, dev_net, host_t, host_net)) ->
            let routing = Topology.routing_kind (Interconnect.topology dev_net) in
            let speedup =
              if Time.to_ns dev_t = 0 then 0.0
              else Time.to_sec_float host_t /. Time.to_sec_float dev_t
            in
            Printf.printf "%6d %16s %10s %12.2f %12.2f %7.2fx %12d %10s\n" gpus
              (Topology.spec_to_string spec) (Coll.algorithm_to_string alg) (us dev_t)
              (us host_t) speedup
              (Interconnect.pairs_resolved dev_net)
              routing;
            List.map
              (fun (driver, total, net) ->
                J.Obj
                  [
                    ("label", J.String (driver ^ ":" ^ Coll.algorithm_to_string alg));
                    ("driver", J.String driver);
                    ("algorithm", J.String (Coll.algorithm_to_string alg));
                    ("gpus", J.Int gpus);
                    ("topology", J.String (Topology.spec_to_string spec));
                    ("routing", J.String routing);
                    ("total_ns", J.Int (Time.to_ns total));
                    ("pairs_resolved", J.Int (Interconnect.pairs_resolved net));
                  ])
              [ ("device", dev_t, dev_net); ("host", host_t, host_net) ])
          grid
      in
      (List.concat points, ()))

(* Documented schema of the fig.collective series: every point names its
   driver (device or host), algorithm, machine shape and routed-pair
   footprint, and the figure must include a cluster-scale comparison — a
   device/host pair on the same >= 256-GPU machine and algorithm. *)
let validate_collective_doc doc =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let field kvs name = List.assoc_opt name kvs in
  let point_shape i p =
    match p with
    | J.Obj kvs -> (
      match
        ( field kvs "driver",
          field kvs "algorithm",
          field kvs "gpus",
          field kvs "topology",
          field kvs "routing",
          field kvs "total_ns",
          field kvs "pairs_resolved" )
      with
      | ( Some (J.String ("device" | "host")),
          Some (J.String _),
          Some (J.Int _),
          Some (J.String _),
          Some (J.String _),
          Some (J.Int _),
          Some (J.Int _) ) ->
        Ok ()
      | _ ->
        fail
          "collective point %d: needs \"driver\" (device|host), string \
           \"algorithm\"/\"topology\"/\"routing\", int \"gpus\"/\"total_ns\"/\"pairs_resolved\""
          i)
    | _ -> fail "collective point %d: not an object" i
  in
  let key kvs =
    (field kvs "gpus", field kvs "topology", field kvs "algorithm")
  in
  let cluster_pair pts =
    List.exists
      (function
        | J.Obj kvs ->
          field kvs "driver" = Some (J.String "device")
          && (match field kvs "gpus" with Some (J.Int g) -> g >= 256 | _ -> false)
          && List.exists
               (function
                 | J.Obj kvs' ->
                   field kvs' "driver" = Some (J.String "host") && key kvs' = key kvs
                 | _ -> false)
               pts
        | _ -> false)
      pts
  in
  match doc with
  | J.Obj kvs -> (
    match field kvs "figures" with
    | Some (J.List figs) -> (
      let coll =
        List.filter_map
          (function
            | J.Obj f when field f "figure" = Some (J.String "fig.collective") -> Some f
            | _ -> None)
          figs
      in
      match coll with
      | [ fig ] -> (
        match field fig "points" with
        | Some (J.List (_ :: _ as pts)) ->
          let rec go i = function
            | [] -> Ok ()
            | p :: rest -> (match point_shape i p with Ok () -> go (i + 1) rest | e -> e)
          in
          (match go 0 pts with
          | Error _ as e -> e
          | Ok () ->
            if cluster_pair pts then Ok ()
            else
              fail
                "fig.collective has no device/host pair at >= 256 GPUs on the same machine \
                 and algorithm")
        | _ -> fail "fig.collective: missing or empty points list")
      | l -> fail "expected exactly one fig.collective figure, found %d" (List.length l))
    | _ -> fail "document has no figures list")
  | _ -> fail "document is not an object"

(* ---------------------------------------------------------------- *)
(* Engine-throughput microbenchmark (`-- micro`)                     *)
(* ---------------------------------------------------------------- *)

module Microbench = Cpufree_core.Microbench

let micro_point (r : Microbench.report) ~speedup =
  let windows, fallback =
    match r.Microbench.outcome with
    | E.Engine.Windowed { windows; jobs = _ } -> (windows, J.Null)
    | E.Engine.Adaptive { windows; _ } -> (windows, J.Null)
    | E.Engine.Optimistic { rounds; _ } -> (rounds, J.Null)
    | E.Engine.Sequential reason -> (0, J.String reason)
  in
  J.Obj
    [
      ("mode", J.String r.Microbench.label);
      ("jobs", J.Int r.Microbench.jobs);
      ("events", J.Int r.Microbench.out.Microbench.events);
      ("events_per_sec", J.Float (Microbench.events_per_sec r));
      ("wall_sec", J.Float r.Microbench.wall_sec);
      ("major_gc_words", J.Float r.Microbench.major_words);
      ("windows", J.Int windows);
      ("sim_ns", J.Int r.Microbench.out.Microbench.sim_ns);
      ("bytes", J.Int r.Microbench.out.Microbench.bytes);
      ("speedup_vs_seq", J.Float speedup);
      ("fallback", fallback);
    ]

(* The documented schema of the micro.engine figure (EXPERIMENTS.md): every
   point must carry exactly these fields with these JSON types. The
   micro-smoke alias fails the build if a refactor drifts from it. *)
let micro_required_fields =
  [
    ("mode", `String);
    ("jobs", `Int);
    ("events", `Int);
    ("events_per_sec", `Float);
    ("wall_sec", `Float);
    ("major_gc_words", `Float);
    ("windows", `Int);
    ("sim_ns", `Int);
    ("bytes", `Int);
    ("speedup_vs_seq", `Float);
  ]

let validate_micro_doc doc =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let field kvs name = List.assoc_opt name kvs in
  let check_point i p =
    match p with
    | J.Obj kvs ->
      List.fold_left
        (fun acc (name, ty) ->
          match acc with
          | Error _ -> acc
          | Ok () ->
            (match (field kvs name, ty) with
            | None, _ -> fail "point %d: missing field %S" i name
            | Some (J.String _), `String | Some (J.Int _), `Int | Some (J.Float _), `Float ->
              Ok ()
            | Some _, _ -> fail "point %d: field %S has the wrong JSON type" i name))
        (Ok ()) micro_required_fields
    | _ -> fail "point %d: not an object" i
  in
  match doc with
  | J.Obj kvs ->
    (match field kvs "figures" with
    | Some (J.List figs) ->
      let micro =
        List.filter_map
          (function
            | J.Obj f when field f "figure" = Some (J.String "micro.engine") -> Some f
            | _ -> None)
          figs
      in
      (match micro with
      | [ fig ] ->
        (match field fig "points" with
        | Some (J.List (_ :: _ as pts)) ->
          let rec go i = function
            | [] -> Ok ()
            | p :: rest -> (match check_point i p with Ok () -> go (i + 1) rest | e -> e)
          in
          go 0 pts
        | _ -> fail "micro.engine: missing or empty points list")
      | l -> fail "expected exactly one micro.engine figure, found %d" (List.length l))
    | _ -> fail "document has no figures list")
  | _ -> fail "document is not an object"

let micro_fallback (r : Microbench.report) =
  match r.Microbench.outcome with
  | E.Engine.Sequential reason -> Some reason
  | E.Engine.Windowed _ | E.Engine.Adaptive _ | E.Engine.Optimistic _ -> None

(* Topology build-time microbenchmark: constructing a 1024-GPU machine must
   cost O(endpoints), not O(endpoints^2) — structural constructors build no
   all-pairs tables at all, and even the Dijkstra-backed DGX cluster only
   allocates empty rows. The one-second ceiling is a ~200x margin over the
   measured cost; blowing it means an eager all-pairs loop crept back in. *)
let run_micro_topology () =
  figure "micro.topology" (fun () ->
      let gpus = 1024 in
      let specs =
        [
          Topology.Dgx { nodes = gpus / 8 };
          Topology.Fat_tree { arity = 4; rails = 2; gpus_per_node = 8 };
          Topology.Dragonfly { a = 4; p = 4; h = 2; gpus_per_node = 8 };
        ]
      in
      Printf.printf "\ntopology build: %d GPUs (structural constructors route on demand)\n" gpus;
      Printf.printf "%16s %12s %10s %12s %12s\n" "topology" "build(ms)" "vertices" "rows-cached"
        "routing";
      let points =
        List.map
          (fun spec ->
            let t0 = wall () in
            let t = Topology.instantiate spec ~profile:Topology.a100 ~gpus in
            let build = wall () -. t0 in
            (* Touch one cross-machine route so the lazy path demonstrably
               works, then read back how little of the table it filled. *)
            ignore (Topology.route_latency t ~src:(Topology.gpu_vertex t 0)
                      ~dst:(Topology.gpu_vertex t (gpus - 1)) : Time.t);
            let rows = Topology.route_rows_cached t in
            let routing = Topology.routing_kind t in
            if build > 1.0 then begin
              Printf.eprintf
                "[micro] FATAL: %s build took %.3fs for %d GPUs — lazy routing regressed\n%!"
                (Topology.spec_to_string spec) build gpus;
              exit 1
            end;
            Printf.printf "%16s %12.2f %10d %12d %12s\n" (Topology.spec_to_string spec)
              (build *. 1e3) (Topology.num_vertices t) rows routing;
            J.Obj
              [
                ("topology", J.String (Topology.spec_to_string spec));
                ("gpus", J.Int gpus);
                ("build_wall_sec", J.Float build);
                ("vertices", J.Int (Topology.num_vertices t));
                ("rows_cached", J.Int rows);
                ("routing", J.String routing);
              ])
          specs
      in
      (points, ()))

(* Schema of micro.topology: every point carries the machine shape, its
   build wall-clock and the routing strategy; at least one >= 1024-GPU
   machine must build structurally (no Dijkstra rows for its own route). *)
let validate_micro_topology_doc doc =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let field kvs name = List.assoc_opt name kvs in
  let point_shape i p =
    match p with
    | J.Obj kvs -> (
      match
        ( field kvs "topology",
          field kvs "gpus",
          field kvs "build_wall_sec",
          field kvs "rows_cached",
          field kvs "routing" )
      with
      | Some (J.String _), Some (J.Int _), Some (J.Float _), Some (J.Int _), Some (J.String _)
        ->
        Ok ()
      | _ ->
        fail
          "micro.topology point %d: needs string \"topology\"/\"routing\", int \
           \"gpus\"/\"rows_cached\", float \"build_wall_sec\""
          i)
    | _ -> fail "micro.topology point %d: not an object" i
  in
  let structural_large = function
    | J.Obj kvs ->
      (match field kvs "gpus" with Some (J.Int g) -> g >= 1024 | _ -> false)
      && field kvs "routing" = Some (J.String "structural")
    | _ -> false
  in
  match doc with
  | J.Obj kvs -> (
    match field kvs "figures" with
    | Some (J.List figs) -> (
      let topo =
        List.filter_map
          (function
            | J.Obj f when field f "figure" = Some (J.String "micro.topology") -> Some f
            | _ -> None)
          figs
      in
      match topo with
      | [ fig ] -> (
        match field fig "points" with
        | Some (J.List (_ :: _ as pts)) ->
          let rec go i = function
            | [] -> Ok ()
            | p :: rest -> (match point_shape i p with Ok () -> go (i + 1) rest | e -> e)
          in
          (match go 0 pts with
          | Error _ as e -> e
          | Ok () ->
            if List.exists structural_large pts then Ok ()
            else fail "micro.topology has no structurally-routed >= 1024-GPU point")
        | _ -> fail "micro.topology: missing or empty points list")
      | l -> fail "expected exactly one micro.topology figure, found %d" (List.length l))
    | _ -> fail "document has no figures list")
  | _ -> fail "document is not an object"

let run_micro ~smoke =
  header "Engine throughput: sequential vs conservative windowed partitioned execution";
  let cfg =
    if smoke then
      { Microbench.default with Microbench.gpus = 4; iters = 10; ticks_per_iter = 2 }
    else Microbench.default
  in
  let jobs = Parallel.default_jobs () in
  figure "micro.engine" (fun () ->
      let seq = Microbench.run_seq cfg in
      let win = Microbench.run_windowed ~jobs cfg in
      if not (Microbench.equal_output seq.Microbench.out win.Microbench.out) then begin
        Printf.eprintf "[micro] FATAL: windowed output differs from sequential output\n%!";
        exit 1
      end;
      let speedup =
        let s = Microbench.events_per_sec seq in
        if s = 0.0 then 0.0 else Microbench.events_per_sec win /. s
      in
      Printf.printf "scenario: %d GPUs, %d rounds, ring halo exchange (outputs verified equal)\n"
        cfg.Microbench.gpus cfg.Microbench.iters;
      Printf.printf "%-10s %5s %8s %12s %14s %12s %16s\n" "mode" "jobs" "windows" "events"
        "events/sec" "wall(s)" "major-GC-words";
      let row (r : Microbench.report) =
        let windows =
          match r.Microbench.outcome with
          | E.Engine.Windowed { windows; _ } -> string_of_int windows
          | E.Engine.Adaptive { windows; _ } -> string_of_int windows
          | E.Engine.Optimistic { rounds; _ } -> string_of_int rounds
          | E.Engine.Sequential _ -> "-"
        in
        Printf.printf "%-10s %5d %8s %12d %14.0f %12.4f %16.0f\n" r.Microbench.label
          r.Microbench.jobs windows r.Microbench.out.Microbench.events
          (Microbench.events_per_sec r) r.Microbench.wall_sec r.Microbench.major_words
      in
      row seq;
      row win;
      Printf.printf "windowed speedup vs sequential: %.2fx (host cores: %d)\n" speedup jobs;
      (match micro_fallback win with
      | Some reason -> Printf.printf "note: windowed run fell back to sequential (%s)\n" reason
      | None -> ());
      ([ micro_point seq ~speedup:1.0; micro_point win ~speedup ], ()));
  run_micro_topology ()

(* ---------------------------------------------------------------- *)
(* Instrumentation-overhead figure (`-- profile`)                    *)
(* ---------------------------------------------------------------- *)

module Obs = Cpufree_obs

(* Sum one counter over every label set (the micro counters are per-rank). *)
let metric_total reg name =
  List.fold_left
    (fun acc (it : Obs.Metrics.item) ->
      if it.Obs.Metrics.name = name then
        match it.Obs.Metrics.value with Obs.Metrics.Counter_v v -> acc + v | _ -> acc
      else acc)
    0 (Obs.Metrics.items reg)

let profile_point ~mode ~metered ~overhead_pct ~ticks ~msgs (r : Microbench.report) =
  J.Obj
    [
      ("mode", J.String mode);
      ("metrics", J.String (if metered then "on" else "off"));
      ("events", J.Int r.Microbench.out.Microbench.events);
      ("events_per_sec", J.Float (Microbench.events_per_sec r));
      ("wall_sec", J.Float r.Microbench.wall_sec);
      ("sim_ns", J.Int r.Microbench.out.Microbench.sim_ns);
      ("ticks_total", J.Int ticks);
      ("msgs_total", J.Int msgs);
      ("overhead_pct", J.Float overhead_pct);
    ]

let profile_required_fields =
  [
    ("mode", `String);
    ("metrics", `String);
    ("events", `Int);
    ("events_per_sec", `Float);
    ("wall_sec", `Float);
    ("sim_ns", `Int);
    ("ticks_total", `Int);
    ("msgs_total", `Int);
    ("overhead_pct", `Float);
  ]

(* The documented schema of fig.profile (EXPERIMENTS.md): the 2x2 grid
   {seq,windowed} x {metrics off,on}, both metered cells carrying non-zero
   counter totals. The profile-smoke alias fails the build on drift. *)
let validate_profile_doc doc =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let field kvs name = List.assoc_opt name kvs in
  let check_point i p =
    match p with
    | J.Obj kvs ->
      List.fold_left
        (fun acc (name, ty) ->
          match acc with
          | Error _ -> acc
          | Ok () ->
            (match (field kvs name, ty) with
            | None, _ -> fail "point %d: missing field %S" i name
            | Some (J.String _), `String | Some (J.Int _), `Int | Some (J.Float _), `Float ->
              Ok ()
            | Some _, _ -> fail "point %d: field %S has the wrong JSON type" i name))
        (Ok ()) profile_required_fields
    | _ -> fail "point %d: not an object" i
  in
  match doc with
  | J.Obj kvs ->
    (match field kvs "figures" with
    | Some (J.List figs) ->
      let profile =
        List.filter_map
          (function
            | J.Obj f when field f "figure" = Some (J.String "fig.profile") -> Some f
            | _ -> None)
          figs
      in
      (match profile with
      | [ fig ] ->
        (match field fig "points" with
        | Some (J.List pts) when List.length pts = 4 ->
          let rec go i = function
            | [] -> Ok ()
            | p :: rest -> (match check_point i p with Ok () -> go (i + 1) rest | e -> e)
          in
          (match go 0 pts with
          | Error _ as e -> e
          | Ok () ->
            let metered_ok =
              List.for_all
                (function
                  | J.Obj p when field p "metrics" = Some (J.String "on") ->
                    (match (field p "ticks_total", field p "msgs_total") with
                    | Some (J.Int t), Some (J.Int m) -> t > 0 && m > 0
                    | _ -> false)
                  | _ -> true)
                pts
            in
            if metered_ok then Ok ()
            else fail "fig.profile: a metered point has zero counter totals")
        | Some (J.List pts) -> fail "fig.profile: expected 4 points, found %d" (List.length pts)
        | _ -> fail "fig.profile: missing points list")
      | l -> fail "expected exactly one fig.profile figure, found %d" (List.length l))
    | _ -> fail "document has no figures list")
  | _ -> fail "document is not an object"

let fig_profile ~smoke () =
  header
    "Fig P  Instrumentation overhead: partition-sharded metrics on the engine hot path (ring \
     microbenchmark)";
  let cfg =
    if smoke then
      { Microbench.default with Microbench.gpus = 4; iters = 50; ticks_per_iter = 2 }
    else { Microbench.default with Microbench.iters = 2000 }
  in
  let reps = if smoke then 1 else 5 in
  let jobs = Parallel.default_jobs () in
  figure "fig.profile" (fun () ->
      (* Best-of-N wall clock per cell (the simulated output is asserted
         identical in every cell, so only the wall cost can differ); the
         metered cells keep their last registry for the totals check. *)
      let run_cell ~mode ~metered =
        let best = ref None and reg = ref None in
        for _ = 1 to reps do
          let metrics = if metered then Some (Obs.Metrics.create ()) else None in
          let cfg = { cfg with Microbench.metrics } in
          let r =
            match mode with
            | `Seq -> Microbench.run_seq cfg
            | `Win -> Microbench.run_windowed ~jobs cfg
          in
          reg := metrics;
          match !best with
          | Some (b : Microbench.report) when b.Microbench.wall_sec <= r.Microbench.wall_sec ->
            ()
          | _ -> best := Some r
        done;
        (Option.get !best, !reg)
      in
      let seq_off, _ = run_cell ~mode:`Seq ~metered:false in
      let seq_on, seq_reg = run_cell ~mode:`Seq ~metered:true in
      let win_off, _ = run_cell ~mode:`Win ~metered:false in
      let win_on, win_reg = run_cell ~mode:`Win ~metered:true in
      (* Gate 1: neither the driver nor the instrumentation may change the
         simulation (times, event counts, payload checksum). *)
      List.iter
        (fun (label, r) ->
          if not (Microbench.equal_output seq_off.Microbench.out r.Microbench.out) then begin
            Printf.eprintf "[profile] FATAL: %s output differs from seq/unmetered\n%!" label;
            exit 1
          end)
        [ ("seq/metered", seq_on); ("windowed/unmetered", win_off); ("windowed/metered", win_on) ];
      (* Gate 2: counter totals are schedule-independent — the windowed run,
         bumping partition-local slots from concurrent domains, must read
         back exactly the sequential totals, and they must be non-zero. *)
      let totals reg =
        match reg with
        | None -> (0, 0)
        | Some reg -> (metric_total reg "micro.ticks", metric_total reg "micro.msgs")
      in
      let seq_ticks, seq_msgs = totals seq_reg in
      let win_ticks, win_msgs = totals win_reg in
      if seq_ticks = 0 || seq_msgs = 0 then begin
        Printf.eprintf "[profile] FATAL: metered run recorded zero ticks/msgs\n%!";
        exit 1
      end;
      if (seq_ticks, seq_msgs) <> (win_ticks, win_msgs) then begin
        Printf.eprintf
          "[profile] FATAL: windowed metric totals (%d, %d) differ from sequential (%d, %d)\n%!"
          win_ticks win_msgs seq_ticks seq_msgs;
        exit 1
      end;
      let overhead ~off ~on =
        let a = off.Microbench.wall_sec and b = on.Microbench.wall_sec in
        if a <= 0.0 then 0.0 else (b -. a) /. a *. 100.0
      in
      let seq_ov = overhead ~off:seq_off ~on:seq_on in
      let win_ov = overhead ~off:win_off ~on:win_on in
      Printf.printf
        "scenario: %d GPUs, %d rounds, ring halo exchange; best of %d rep(s) per cell\n"
        cfg.Microbench.gpus cfg.Microbench.iters reps;
      Printf.printf "%-10s %-8s %12s %14s %12s %14s\n" "mode" "metrics" "events" "events/sec"
        "wall(s)" "overhead(%)";
      let row label metered ov (r : Microbench.report) =
        Printf.printf "%-10s %-8s %12d %14.0f %12.4f %14.2f\n" label
          (if metered then "on" else "off")
          r.Microbench.out.Microbench.events (Microbench.events_per_sec r)
          r.Microbench.wall_sec ov
      in
      row "seq" false 0.0 seq_off;
      row "seq" true seq_ov seq_on;
      row "windowed" false 0.0 win_off;
      row "windowed" true win_ov win_on;
      Printf.printf
        "counter totals (schedule-independent): ticks=%d msgs=%d; disabled runs carry no \
         instruments at all\n"
        seq_ticks seq_msgs;
      if (not smoke) && (seq_ov > 5.0 || win_ov > 5.0) then
        Printf.eprintf
          "[profile] WARNING: instrumentation overhead above the 5%% budget (seq %.2f%%, \
           windowed %.2f%%)\n%!"
          seq_ov win_ov;
      ( [
          profile_point ~mode:"seq" ~metered:false ~overhead_pct:0.0 ~ticks:0 ~msgs:0 seq_off;
          profile_point ~mode:"seq" ~metered:true ~overhead_pct:seq_ov ~ticks:seq_ticks
            ~msgs:seq_msgs seq_on;
          profile_point ~mode:"windowed" ~metered:false ~overhead_pct:0.0 ~ticks:0 ~msgs:0
            win_off;
          profile_point ~mode:"windowed" ~metered:true ~overhead_pct:win_ov ~ticks:win_ticks
            ~msgs:win_msgs win_on;
        ],
        () ))

(* ---------------------------------------------------------------- *)
(* PDES driver shoot-out (`-- pdes`)                                 *)
(* ---------------------------------------------------------------- *)

let pdes_modes : Obs.Sim_env.pdes list = [ `Seq; `Windowed; `Adaptive; `Optimistic ]

let pdes_ran (r : Microbench.report) =
  match r.Microbench.outcome with
  | E.Engine.Sequential _ -> "seq"
  | E.Engine.Windowed _ -> "windowed"
  | E.Engine.Adaptive _ -> "adaptive"
  | E.Engine.Optimistic _ -> "optimistic"

let pdes_point ~scenario ~family ~mode ~speedup (r : Microbench.report) =
  let windows, solo, rounds, rollbacks, antis =
    match r.Microbench.outcome with
    | E.Engine.Sequential _ -> (0, 0, 0, 0, 0)
    | E.Engine.Windowed { windows; _ } -> (windows, 0, 0, 0, 0)
    | E.Engine.Adaptive { windows; solo_windows; _ } -> (windows, solo_windows, 0, 0, 0)
    | E.Engine.Optimistic { rounds; rollbacks; anti_messages; _ } ->
      (0, 0, rounds, rollbacks, anti_messages)
  in
  J.Obj
    [
      ("scenario", J.String scenario);
      ("family", J.String family);
      ("mode", J.String mode);
      ("ran", J.String (pdes_ran r));
      ("jobs", J.Int r.Microbench.jobs);
      ("events", J.Int r.Microbench.out.Microbench.events);
      ("events_per_sec", J.Float (Microbench.events_per_sec r));
      ("wall_sec", J.Float r.Microbench.wall_sec);
      ("sim_ns", J.Int r.Microbench.out.Microbench.sim_ns);
      ("windows", J.Int windows);
      ("solo_windows", J.Int solo);
      ("rounds", J.Int rounds);
      ("rollbacks", J.Int rollbacks);
      ("anti_messages", J.Int antis);
      ("speedup_vs_seq", J.Float speedup);
    ]

(* The documented schema of fig.pdes (EXPERIMENTS.md): per (scenario, family)
   one point per execution mode, each carrying exactly these fields. The
   pdes-smoke alias fails the build on drift. *)
let pdes_required_fields =
  [
    ("scenario", `String);
    ("family", `String);
    ("mode", `String);
    ("ran", `String);
    ("jobs", `Int);
    ("events", `Int);
    ("events_per_sec", `Float);
    ("wall_sec", `Float);
    ("sim_ns", `Int);
    ("windows", `Int);
    ("solo_windows", `Int);
    ("rounds", `Int);
    ("rollbacks", `Int);
    ("anti_messages", `Int);
    ("speedup_vs_seq", `Float);
  ]

let validate_pdes_doc doc =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let field kvs name = List.assoc_opt name kvs in
  let check_point i p =
    match p with
    | J.Obj kvs ->
      List.fold_left
        (fun acc (name, ty) ->
          match acc with
          | Error _ -> acc
          | Ok () ->
            (match (field kvs name, ty) with
            | None, _ -> fail "point %d: missing field %S" i name
            | Some (J.String _), `String | Some (J.Int _), `Int | Some (J.Float _), `Float ->
              Ok ()
            | Some _, _ -> fail "point %d: field %S has the wrong JSON type" i name))
        (Ok ()) pdes_required_fields
    | _ -> fail "point %d: not an object" i
  in
  match doc with
  | J.Obj kvs ->
    (match field kvs "figures" with
    | Some (J.List figs) ->
      let pdes =
        List.filter_map
          (function
            | J.Obj f when field f "figure" = Some (J.String "fig.pdes") -> Some f
            | _ -> None)
          figs
      in
      (match pdes with
      | [ fig ] ->
        (match field fig "points" with
        | Some (J.List (_ :: _ as pts)) ->
          let rec go i = function
            | [] -> Ok ()
            | p :: rest -> (match check_point i p with Ok () -> go (i + 1) rest | e -> e)
          in
          (match go 0 pts with
          | Error _ as e -> e
          | Ok () ->
            (* An optimistic point that really ran optimistically must exist:
               the figure is pointless if every scenario fell back. *)
            let genuine =
              List.exists
                (function
                  | J.Obj p ->
                    field p "mode" = Some (J.String "optimistic")
                    && field p "ran" = Some (J.String "optimistic")
                  | _ -> false)
                pts
            in
            if genuine then Ok ()
            else fail "fig.pdes: no scenario actually ran the optimistic driver")
        | _ -> fail "fig.pdes: missing or empty points list")
      | l -> fail "expected exactly one fig.pdes figure, found %d" (List.length l))
    | _ -> fail "document has no figures list")
  | _ -> fail "document is not an object"

let fig_pdes ~smoke () =
  header
    "Fig PDES  Driver shoot-out: sequential vs conservative windowed vs adaptive windows vs \
     optimistic Time Warp";
  let jobs = Parallel.default_jobs () in
  let reps = if smoke then 1 else 3 in
  let base = Microbench.default in
  let gpus = if smoke then 4 else 8 in
  let iters = if smoke then 48 else 2000 in
  let sparse = if smoke then 16 else 64 in
  let sparse_iters = if smoke then 48 else 4000 in
  (* Scenarios, coarsest knob first: [ring-dense] exchanges halos every round
     (traffic as dense in time as the lookahead allows — the conservative
     drivers' sweet spot, speculation can at best tie and pays for its
     checkpoints); [halo-sparse] syncs every [sparse] rounds, leaving deep
     runs of partition-local events between exchanges — temporal sparsity a
     lookahead-width window cannot see, but speculation rides;
     [halo-sparse-skew] adds a rank-0 straggler on top, so fast ranks' halos
     land in the slow rank's speculated past and force genuine rollbacks with
     anti-messages; [ring-procs] is the process-based formulation, where the
     optimistic request honestly degrades to the conservative windowed driver
     (continuations cannot be checkpointed). *)
  let scenarios =
    [
      ("ring-dense", `Events, { base with Microbench.gpus; iters });
      ( "halo-sparse",
        `Events,
        { base with Microbench.gpus; iters = sparse_iters; sync_every = sparse } );
      ( "halo-sparse-skew",
        `Events,
        { base with Microbench.gpus; iters = sparse_iters; sync_every = sparse; skew_ns = 150 }
      );
      ( "ring-procs",
        `Procs,
        { base with Microbench.gpus; iters = (if smoke then 10 else 200); ticks_per_iter = 2 }
      );
    ]
  in
  figure "fig.pdes" (fun () ->
      let all_points = ref [] in
      let best_opt = ref None in
      List.iter
        (fun (scenario, family, cfg) ->
          let family_name = match family with `Events -> "events" | `Procs -> "procs" in
          (* Seed the speculation horizon at one halo epoch: the adaptive
             throttle would get there anyway, this skips the warm-up. *)
          let horizon =
            if cfg.Microbench.sync_every > 1 then
              Some
                (E.Time.ns
                   (cfg.Microbench.sync_every * cfg.Microbench.ticks_per_iter
                    * (cfg.Microbench.tick_ns + cfg.Microbench.skew_ns)))
            else None
          in
          let run_once mode =
            match family with
            | `Events -> Microbench.run_events ~jobs ?horizon ~mode cfg
            | `Procs -> Microbench.run_procs ~jobs ~mode cfg
          in
          (* Best-of-N wall clock (outputs are asserted identical below, so
             repetition only de-noises the events/sec column). *)
          let run mode =
            let best = ref (run_once mode) in
            for _ = 2 to reps do
              let r = run_once mode in
              if r.Microbench.wall_sec < !best.Microbench.wall_sec then best := r
            done;
            !best
          in
          let reports = List.map (fun m -> (m, run m)) pdes_modes in
          let seq = List.assoc `Seq reports in
          List.iter
            (fun ((m : Obs.Sim_env.pdes), (r : Microbench.report)) ->
              if not (Microbench.equal_output seq.Microbench.out r.Microbench.out) then begin
                Printf.eprintf "[pdes] FATAL: %s/%s output differs from sequential\n%!"
                  scenario
                  (Obs.Sim_env.pdes_to_string m);
                exit 1
              end)
            reports;
          Printf.printf
            "\nscenario %-16s (%s family): %d GPUs, %d rounds, sync every %d, skew %d ns \
             (outputs verified equal)\n"
            scenario family_name cfg.Microbench.gpus cfg.Microbench.iters
            cfg.Microbench.sync_every cfg.Microbench.skew_ns;
          Printf.printf "  %-12s %-10s %5s %10s %14s %9s %9s %9s %7s\n" "mode" "ran" "jobs"
            "events" "events/sec" "win/rnd" "rollback" "anti" "vs-seq";
          let seq_eps = Microbench.events_per_sec seq in
          List.iter
            (fun ((m : Obs.Sim_env.pdes), (r : Microbench.report)) ->
              let speedup =
                if seq_eps = 0.0 then 0.0 else Microbench.events_per_sec r /. seq_eps
              in
              let winrnd, rb, anti =
                match r.Microbench.outcome with
                | E.Engine.Sequential _ -> ("-", 0, 0)
                | E.Engine.Windowed { windows; _ } -> (string_of_int windows, 0, 0)
                | E.Engine.Adaptive { windows; _ } -> (string_of_int windows, 0, 0)
                | E.Engine.Optimistic { rounds; rollbacks; anti_messages; _ } ->
                  (string_of_int rounds, rollbacks, anti_messages)
              in
              Printf.printf "  %-12s %-10s %5d %10d %14.0f %9s %9d %9d %6.2fx\n"
                (Obs.Sim_env.pdes_to_string m)
                (pdes_ran r) r.Microbench.jobs r.Microbench.out.Microbench.events
                (Microbench.events_per_sec r) winrnd rb anti speedup;
              (if family = `Events && m = `Optimistic && pdes_ran r = "optimistic" then
                 let win = List.assoc `Windowed reports in
                 let ratio =
                   let w = Microbench.events_per_sec win in
                   if w = 0.0 then 0.0 else Microbench.events_per_sec r /. w
                 in
                 match !best_opt with
                 | Some (_, best) when best >= ratio -> ()
                 | _ -> best_opt := Some (scenario, ratio));
              all_points :=
                pdes_point ~scenario ~family:family_name
                  ~mode:(Obs.Sim_env.pdes_to_string m)
                  ~speedup r
                :: !all_points)
            reports)
        scenarios;
      (match !best_opt with
      | Some (scenario, ratio) ->
        Printf.printf "\noptimistic vs windowed (events/sec): best ratio %.2fx on %s%s\n" ratio
          scenario
          (if ratio > 1.0 then "" else " (no win this run — wall-clock noise or dense traffic)")
      | None -> Printf.printf "\noptimistic driver never ran genuinely (all fallbacks)\n");
      (List.rev !all_points, ()))

(* ---------------------------------------------------------------- *)
(* Bechamel wall-clock microbenchmarks (one per figure regenerator)  *)
(* ---------------------------------------------------------------- *)

let bechamel_suite () =
  header "Bechamel wall-clock benchmarks of the simulator itself (one per figure)";
  let run_stencil kind problem gpus = S.Harness.run_env kind problem ~gpus in
  let quick_stencil kind () =
    let problem = S.Problem.make (S.Problem.D2 { nx = 256; ny = 256 }) ~iterations:5 in
    ignore (run_stencil kind problem 8)
  in
  let quick_dace arm () =
    let app = D.Pipeline.Jacobi1d { D.Programs.n_global = 1 lsl 16; tsteps = 5 } in
    ignore (D.Pipeline.run_env app arm ~gpus:8)
  in
  let tests =
    [
      Bechamel.Test.make ~name:"fig2.2a:no-compute-cpu-free"
        (Bechamel.Staged.stage (fun () ->
             let problem =
               S.Problem.make ~compute:false (S.Problem.D2 { nx = 256; ny = 256 })
                 ~iterations:5
             in
             ignore (run_stencil S.Variants.Cpu_free problem 8)));
      Bechamel.Test.make ~name:"fig6.1:baseline-copy" (Bechamel.Staged.stage (quick_stencil S.Variants.Copy));
      Bechamel.Test.make ~name:"fig6.1:baseline-nvshmem"
        (Bechamel.Staged.stage (quick_stencil S.Variants.Nvshmem));
      Bechamel.Test.make ~name:"fig6.1:cpu-free" (Bechamel.Staged.stage (quick_stencil S.Variants.Cpu_free));
      Bechamel.Test.make ~name:"fig6.2:3d-cpu-free"
        (Bechamel.Staged.stage (fun () ->
             let problem =
               S.Problem.make (S.Problem.D3 { nx = 32; ny = 32; nz = 64 }) ~iterations:5
             in
             ignore (run_stencil S.Variants.Cpu_free problem 8)));
      Bechamel.Test.make ~name:"fig6.3a:dace-baseline"
        (Bechamel.Staged.stage (quick_dace D.Pipeline.Baseline_mpi));
      Bechamel.Test.make ~name:"fig6.3a:dace-cpu-free" (Bechamel.Staged.stage (quick_dace D.Pipeline.Cpu_free));
      Bechamel.Test.make ~name:"fig6.3b:dace-2d-cpu-free"
        (Bechamel.Staged.stage (fun () ->
             let app =
               D.Pipeline.Jacobi2d { D.Programs.nx_global = 256; ny_global = 256; tsteps = 3 }
             in
             ignore (D.Pipeline.run_env app D.Pipeline.Cpu_free ~gpus:8)));
    ]
  in
  let benchmark test =
    let instance = Bechamel.Toolkit.Instance.monotonic_clock in
    let cfg = Bechamel.Benchmark.cfg ~limit:200 ~quota:(Bechamel.Time.second 0.25) ~kde:(Some 100) () in
    let ols = Bechamel.Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Bechamel.Measure.run |] in
    let raw = Bechamel.Benchmark.all cfg [ instance ] (Bechamel.Test.make_grouped ~name:"g" [ test ]) in
    let results = Bechamel.Analyze.all ols instance raw in
    Hashtbl.iter
      (fun name ols_result ->
        match Bechamel.Analyze.OLS.estimates ols_result with
        | Some [ est ] -> Printf.printf "  %-34s %14.1f ns/run\n" name est
        | Some _ | None -> Printf.printf "  %-34s (no estimate)\n" name)
      results
  in
  List.iter benchmark tests

(* ---------------------------------------------------------------- *)
(* fig.autotune — the generic auto-offload pass vs the hand-built     *)
(* pipelines (tentpole of the pass-architecture refactor)             *)
(* ---------------------------------------------------------------- *)

(* Documented schema of the fig.autotune series (EXPERIMENTS.md): one point
   per program. [generic] marks the programs that exist only outside the
   app enum — their [hand_plan]/[hand_ns] column is the best non-generic
   single-device port instead of a hand-built distributed pipeline. *)
let autotune_required_fields =
  [
    ("label", `String);
    ("gpus", `Int);
    ("generic", `Bool);
    ("plan", `String);
    ("predicted_ns", `Int);
    ("hand_plan", `String);
    ("hand_ns", `Int);
    ("margin_pct", `Float);
    ("candidates", `Int);
  ]

let validate_autotune_doc doc =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let field kvs name = List.assoc_opt name kvs in
  let check_point i p =
    match p with
    | J.Obj kvs ->
      List.fold_left
        (fun acc (name, ty) ->
          match acc with
          | Error _ -> acc
          | Ok () ->
            (match (field kvs name, ty) with
            | None, _ -> fail "point %d: missing field %S" i name
            | Some (J.String _), `String
            | Some (J.Int _), `Int
            | Some (J.Float _), `Float
            | Some (J.Bool _), `Bool ->
              Ok ()
            | Some _, _ -> fail "point %d: field %S has the wrong JSON type" i name))
        (Ok ()) autotune_required_fields
    | _ -> fail "point %d: not an object" i
  in
  match doc with
  | J.Obj kvs ->
    (match field kvs "figures" with
    | Some (J.List figs) ->
      let auto =
        List.filter_map
          (function
            | J.Obj f when field f "figure" = Some (J.String "fig.autotune") -> Some f
            | _ -> None)
          figs
      in
      (match auto with
      | [ fig ] ->
        (match field fig "points" with
        | Some (J.List (_ :: _ as pts)) ->
          let rec go i = function
            | [] -> Ok ()
            | p :: rest -> (match check_point i p with Ok () -> go (i + 1) rest | e -> e)
          in
          (match go 0 pts with
          | Error _ as e -> e
          | Ok () ->
            (* The figure must cover a program that exists only generically
               (outside the app enum), and every hand-built pipeline must be
               matched or beaten — the pass's two headline claims. *)
            let generic =
              List.exists
                (function J.Obj p -> field p "generic" = Some (J.Bool true) | _ -> false)
                pts
            in
            let beaten =
              List.for_all
                (function
                  | J.Obj p -> (
                    match (field p "predicted_ns", field p "hand_ns") with
                    | Some (J.Int pr), Some (J.Int h) -> pr <= h
                    | _ -> false)
                  | _ -> false)
                pts
            in
            if not generic then fail "fig.autotune: no generic (non-enum) program point"
            else if not beaten then
              fail "fig.autotune: a searched plan lost to its hand-built pipeline"
            else Ok ())
        | _ -> fail "fig.autotune: missing or empty points list")
      | l -> fail "expected exactly one fig.autotune figure, found %d" (List.length l))
    | _ -> fail "document has no figures list")
  | _ -> fail "document is not an object"

let fig_autotune ~smoke () =
  header
    "Fig AUTO  Generic auto-offload pass: searched transformation sequence vs the hand-built \
     CPU-free pipelines";
  let n1d = if smoke then 256 else 4096 in
  let n2d = if smoke then 256 else 1024 in
  let n3d = if smoke then 16 else 32 in
  let iters = if smoke then 5 else 50 in
  (* Big enough that offloading and 1-D sharding pay for the launch and
     exchange overheads the simulator charges. *)
  let sm = { D.Programs.sm_n = 262144; sm_steps = 16 } in
  let fatal fmt = Printf.ksprintf (fun s -> Printf.eprintf "[autotune] FATAL: %s\n%!" s; exit 1) fmt in
  let search sdfg ~gpus ~iterations ~env =
    match D.Autotune.search ~env sdfg ~gpus ~iterations with
    | Ok d -> d
    | Error e -> fatal "search failed: %s" e
  in
  let probe_cost ~label ~gpus ~iterations (built : D.Exec.built) =
    Measure.probe_env ~label ~gpus ~iterations built.D.Exec.program
  in
  figure "fig.autotune" (fun () ->
      let gpus = 4 in
      let enum_cases =
        [
          ("jacobi1d", D.Pipeline.Jacobi1d { D.Programs.n_global = n1d; tsteps = iters });
          ( "jacobi2d",
            D.Pipeline.Jacobi2d { D.Programs.nx_global = n2d; ny_global = n2d; tsteps = iters } );
          ("heat3d", D.Pipeline.Heat3d { D.Programs.nx3 = n3d; ny3 = n3d; nz3 = n3d; tsteps3 = iters });
        ]
      in
      Printf.printf "%-10s %5s  %-38s %12s  %-30s %12s %8s\n" "program" "gpus" "searched plan"
        "predicted" "hand-built" "cost" "margin";
      let enum_points =
        List.map
          (fun (name, app) ->
            let arm = D.Pipeline.Cpu_free in
            let sdfg = D.Pipeline.frontend app arm ~gpus in
            let hand_plan = D.Pipeline.hand_plan arm ~gpus in
            let hand_ns =
              Time.to_ns
                (probe_cost ~label:(name ^ "/hand") ~gpus ~iterations:iters
                   (D.Autotune.build hand_plan sdfg))
            in
            let d = search sdfg ~gpus ~iterations:iters ~env:Cpufree_obs.Sim_env.default in
            let predicted_ns = Time.to_ns d.D.Autotune.predicted in
            if predicted_ns > hand_ns then
              fatal "%s: searched plan %s (%dns) lost to hand-built %s (%dns)" name
                (D.Autotune.plan_to_string d.D.Autotune.best)
                predicted_ns
                (D.Autotune.plan_to_string hand_plan)
                hand_ns;
            let margin =
              100.0 *. (float_of_int (hand_ns - predicted_ns) /. float_of_int hand_ns)
            in
            Printf.printf "%-10s %5d  %-38s %12s  %-30s %12s %7.1f%%\n" name gpus
              (D.Autotune.plan_to_string d.D.Autotune.best)
              (Time.to_string d.D.Autotune.predicted)
              (D.Autotune.plan_to_string hand_plan)
              (Time.to_string (Time.ns hand_ns))
              margin;
            J.Obj
              [
                ("label", J.String name);
                ("gpus", J.Int gpus);
                ("generic", J.Bool false);
                ("plan", J.String (D.Autotune.plan_to_string d.D.Autotune.best));
                ("predicted_ns", J.Int predicted_ns);
                ("hand_plan", J.String (D.Autotune.plan_to_string hand_plan));
                ("hand_ns", J.Int hand_ns);
                ("margin_pct", J.Float margin);
                ("candidates", J.Int (List.length d.D.Autotune.evaluated));
              ])
          enum_cases
      in
      (* The generic program: exists only outside the app enum; its
         comparison column is the best non-generic single-device port. *)
      let sdfg = D.Programs.smoother_global sm in
      let d =
        search sdfg ~gpus ~iterations:sm.D.Programs.sm_steps ~env:Cpufree_obs.Sim_env.default
      in
      if not d.D.Autotune.best.D.Autotune.shard then
        fatal "smoother: searched plan %s does not shard across the machine"
          (D.Autotune.plan_to_string d.D.Autotune.best);
      let naive_plan =
        {
          D.Autotune.shard = false;
          gpus_used = 1;
          offload = D.Autotune.Offload_discrete { fusion = true };
        }
      in
      let naive_ns =
        Time.to_ns
          (probe_cost ~label:"smoother/naive" ~gpus:1 ~iterations:sm.D.Programs.sm_steps
             (D.Autotune.build naive_plan sdfg))
      in
      let predicted_ns = Time.to_ns d.D.Autotune.predicted in
      if predicted_ns > naive_ns then
        fatal "smoother: searched plan lost to the naive single-device port";
      let margin = 100.0 *. (float_of_int (naive_ns - predicted_ns) /. float_of_int naive_ns) in
      Printf.printf "%-10s %5d  %-38s %12s  %-30s %12s %7.1f%%\n" "smoother" gpus
        (D.Autotune.plan_to_string d.D.Autotune.best)
        (Time.to_string d.D.Autotune.predicted)
        (D.Autotune.plan_to_string naive_plan)
        (Time.to_string (Time.ns naive_ns))
        margin;
      let generic_point =
        J.Obj
          [
            ("label", J.String "smoother");
            ("gpus", J.Int gpus);
            ("generic", J.Bool true);
            ("plan", J.String (D.Autotune.plan_to_string d.D.Autotune.best));
            ("predicted_ns", J.Int predicted_ns);
            ("hand_plan", J.String (D.Autotune.plan_to_string naive_plan));
            ("hand_ns", J.Int naive_ns);
            ("margin_pct", J.Float margin);
            ("candidates", J.Int (List.length d.D.Autotune.evaluated));
          ]
      in
      (* Determinism gate: the plan choice must survive re-running the
         search and pinning the candidate probe's ambient environment to
         different PDES drivers. *)
      let plan_of env = D.Autotune.plan_to_string (search sdfg ~gpus ~iterations:sm.D.Programs.sm_steps ~env).D.Autotune.best in
      let p0 = D.Autotune.plan_to_string d.D.Autotune.best in
      List.iter
        (fun (what, env) ->
          let p = plan_of env in
          if p <> p0 then fatal "plan choice is not deterministic (%s): %s vs %s" what p0 p)
        [
          ("re-run", Cpufree_obs.Sim_env.default);
          ("pdes=seq", Cpufree_obs.Sim_env.make ~pdes:`Seq ());
          ("pdes=optimistic", Cpufree_obs.Sim_env.make ~pdes:`Optimistic ());
        ];
      Printf.printf "plan choice deterministic across re-runs and PDES modes\n";
      (* End-to-end gate: execute the searched plan with real buffers and
         check the generic program's result against its sequential
         reference. *)
      let built = D.Autotune.build ~backed:true d.D.Autotune.best sdfg in
      let (_ : Measure.result) =
        Measure.run_env ~label:"smoother/verify" ~gpus:d.D.Autotune.best.D.Autotune.gpus_used
          ~iterations:sm.D.Programs.sm_steps built.D.Exec.program
      in
      let reference = D.Programs.reference_smoother sm in
      let local = sm.D.Programs.sm_n / gpus in
      let worst = ref 0.0 in
      for pe = 0 to gpus - 1 do
        match built.D.Exec.read_array "U" ~pe with
        | None -> fatal "smoother rank %d: array U missing after the run" pe
        | Some buf ->
          for i = 1 to local do
            let err = Float.abs (G.Buffer.get buf i -. reference.((pe * local) + i)) in
            if err > !worst then worst := err
          done
      done;
      if !worst > 1e-9 then fatal "smoother verification failed: max |err| = %.3e" !worst;
      Printf.printf "smoother verified against the sequential reference (max |err| = %.2e)\n"
        !worst;
      (enum_points @ [ generic_point ], ()))

(* ---------------------------------------------------------------- *)
(* fig.serve: scenario daemon — cold-cache vs warm-cache saturation  *)
(* ---------------------------------------------------------------- *)

let serve_required_fields =
  [
    ("phase", `String);
    ("requests", `Int);
    ("wall_clock_sec", `Float);
    ("req_per_sec", `Float);
    ("mean_latency_us", `Float);
    ("hits", `Int);
    ("simulations", `Int);
  ]

let validate_serve_doc doc =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let field kvs name = List.assoc_opt name kvs in
  let check_point i p =
    match p with
    | J.Obj kvs ->
      List.fold_left
        (fun acc (name, ty) ->
          match acc with
          | Error _ -> acc
          | Ok () ->
            (match (field kvs name, ty) with
            | None, _ -> fail "point %d: missing field %S" i name
            | Some (J.String _), `String | Some (J.Int _), `Int | Some (J.Float _), `Float ->
              Ok ()
            | Some _, _ -> fail "point %d: field %S has the wrong JSON type" i name))
        (Ok ()) serve_required_fields
    | _ -> fail "point %d: not an object" i
  in
  match doc with
  | J.Obj kvs ->
    (match field kvs "figures" with
    | Some (J.List figs) ->
      let serve =
        List.filter_map
          (function
            | J.Obj f when field f "figure" = Some (J.String "fig.serve") -> Some f
            | _ -> None)
          figs
      in
      (match serve with
      | [ fig ] ->
        (match field fig "points" with
        | Some (J.List (_ :: _ as pts)) ->
          let rec go i = function
            | [] -> Ok ()
            | p :: rest -> (match check_point i p with Ok () -> go (i + 1) rest | e -> e)
          in
          (match go 0 pts with
          | Error _ as e -> e
          | Ok () ->
            let find_phase name =
              List.find_map
                (function
                  | J.Obj p when field p "phase" = Some (J.String name) -> Some p
                  | _ -> None)
                pts
            in
            (match (find_phase "cold", find_phase "warm") with
            | None, _ -> fail "fig.serve: no cold-cache point"
            | _, None -> fail "fig.serve: no warm-cache point"
            | Some cold, Some warm ->
              let rps p =
                match field p "req_per_sec" with Some (J.Float f) -> f | _ -> 0.0
              in
              let int_field p name =
                match field p name with Some (J.Int n) -> n | _ -> -1
              in
              if int_field warm "hits" < 1 then
                fail "fig.serve: warm phase recorded no cache hits"
              else if int_field warm "simulations" <> 0 then
                fail "fig.serve: warm phase re-simulated a cached scenario"
              else if int_field cold "simulations" < 1 then
                fail "fig.serve: cold phase ran no simulations"
              else if rps warm < 10.0 *. rps cold then
                fail "fig.serve: warm throughput %.0f req/s is under 10x cold %.0f req/s"
                  (rps warm) (rps cold)
              else Ok ()))
        | _ -> fail "fig.serve: missing or empty points list")
      | l -> fail "expected exactly one fig.serve figure, found %d" (List.length l))
    | _ -> fail "document has no figures list")
  | _ -> fail "document is not an object"

(* The daemon saturation figure: fork a scenario daemon, replay a fixed set
   of distinct scenarios once against the empty cache (every request
   simulates), then replay the same set several more times (every request is
   a content-hash hit). The per-phase throughput and request counters come
   back over the wire from the daemon's own stats op, so the figure measures
   the full socket round-trip, not an in-process shortcut. Rates go to
   stderr with the rest of the wall-clock chatter; stdout keeps only the
   deterministic counters. *)
let fig_serve ~smoke () =
  header "Fig SERVE  Scenario daemon: cold-cache vs warm-cache saturation";
  let fatal fmt =
    Printf.ksprintf
      (fun s ->
        Printf.eprintf "[serve] FATAL: %s\n%!" s;
        exit 1)
      fmt
  in
  let n_cold = if smoke then 6 else 24 in
  let reps = if smoke then 4 else 8 in
  let dims = if smoke then "2d:256x256" else "2d:384x384" in
  let base_iters = if smoke then 25 else 40 in
  let scenario i =
    Scenario.make ~gpus:4
      (Scenario.Stencil
         { variant = "cpu-free"; dims; iters = base_iters + i; no_compute = false })
  in
  let scenarios = Array.init n_cold scenario in
  let socket_path = Printf.sprintf "bench-serve-%d.sock" (Unix.getpid ()) in
  (* The daemon must be a separate process: Server.run blocks its calling
     domain, and killing it from inside would tear down our own runtime. *)
  flush stdout;
  flush stderr;
  let child =
    match Unix.fork () with
    | 0 ->
      (try
         Serve.Server.run
           {
             (Serve.Server.default_config ~socket_path) with
             Serve.Server.cache_capacity = (2 * n_cold) + 4;
           }
       with e -> Printf.eprintf "[serve] daemon died: %s\n%!" (Printexc.to_string e));
      exit 0
    | pid -> pid
  in
  let reaped = ref false in
  at_exit (fun () ->
    if not !reaped then begin
      (try Unix.kill child Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] child) with Unix.Unix_error _ -> ()
    end);
  let rec connect tries =
    match Serve.Client.connect socket_path with
    | Ok c -> c
    | Error e ->
      if tries = 0 then fatal "cannot reach the daemon: %s" e
      else begin
        Unix.sleepf 0.02;
        connect (tries - 1)
      end
  in
  let client = connect 250 in
  let next_id = ref 0 in
  let run_one sc =
    incr next_id;
    match Serve.Client.run client ~id:!next_id sc with
    | Ok (Serve.Protocol.Ok_resp { body = Serve.Protocol.Run_result _; cached; _ }) -> cached
    | Ok (Serve.Protocol.Error_resp { message; _ }) ->
      fatal "request %d refused: %s" !next_id message
    | Ok (Serve.Protocol.Overload_resp _) -> fatal "request %d hit admission control" !next_id
    | Ok _ -> fatal "request %d: unexpected response" !next_id
    | Error e -> fatal "request %d: %s" !next_id e
  in
  let stats () =
    incr next_id;
    match Serve.Client.stats client ~id:!next_id with
    | Ok s -> s
    | Error e -> fatal "stats: %s" e
  in
  figure "fig.serve" (fun () ->
      let s0 = stats () in
      let t0 = wall () in
      Array.iter (fun sc -> ignore (run_one sc)) scenarios;
      let cold_t = Float.max (wall () -. t0) 1e-9 in
      let s1 = stats () in
      let t1 = wall () in
      for _ = 1 to reps do
        Array.iter
          (fun sc -> if not (run_one sc) then fatal "warm request missed the cache")
          scenarios
      done;
      let warm_t = Float.max (wall () -. t1) 1e-9 in
      let s2 = stats () in
      let n_warm = reps * n_cold in
      let cold_sims = s1.Serve.Protocol.simulations - s0.Serve.Protocol.simulations in
      let cold_hits = s1.Serve.Protocol.hits - s0.Serve.Protocol.hits in
      let warm_sims = s2.Serve.Protocol.simulations - s1.Serve.Protocol.simulations in
      let warm_hits = s2.Serve.Protocol.hits - s1.Serve.Protocol.hits in
      if cold_sims <> n_cold then
        fatal "cold phase: expected %d simulations, daemon reports %d" n_cold cold_sims;
      if warm_sims <> 0 then fatal "warm phase: daemon re-simulated %d cached runs" warm_sims;
      if warm_hits <> n_warm then
        fatal "warm phase: expected %d cache hits, daemon reports %d" n_warm warm_hits;
      let cold_rps = float_of_int n_cold /. cold_t in
      let warm_rps = float_of_int n_warm /. warm_t in
      if warm_rps < 10.0 *. cold_rps then
        fatal "warm-cache throughput %.0f req/s is under 10x cold-cache %.0f req/s" warm_rps
          cold_rps;
      (match Serve.Client.shutdown client ~id:(incr next_id; !next_id) with
      | Ok () -> ()
      | Error e -> fatal "shutdown: %s" e);
      Serve.Client.close client;
      (match Unix.waitpid [] child with
      | _, Unix.WEXITED 0 -> reaped := true
      | _, Unix.WEXITED c -> fatal "daemon exited with status %d" c
      | _, Unix.WSIGNALED s -> fatal "daemon killed by signal %d" s
      | _, Unix.WSTOPPED s -> fatal "daemon stopped by signal %d" s);
      Printf.printf "  %-6s %10s %6s %6s\n" "phase" "requests" "hits" "sims";
      Printf.printf "  %-6s %10d %6d %6d\n" "cold" n_cold cold_hits cold_sims;
      Printf.printf "  %-6s %10d %6d %6d\n%!" "warm" n_warm warm_hits warm_sims;
      Printf.eprintf
        "[serve] cold %.0f req/s (%.1f ms/req)  warm %.0f req/s (%.3f ms/req)  speedup %.0fx\n%!"
        cold_rps
        (cold_t *. 1e3 /. float_of_int n_cold)
        warm_rps
        (warm_t *. 1e3 /. float_of_int n_warm)
        (warm_rps /. cold_rps);
      let phase_point name ~requests ~elapsed ~hits ~sims =
        J.Obj
          [
            ("phase", J.String name);
            ("requests", J.Int requests);
            ("wall_clock_sec", J.Float elapsed);
            ("req_per_sec", J.Float (float_of_int requests /. elapsed));
            ("mean_latency_us", J.Float (elapsed *. 1e6 /. float_of_int requests));
            ("hits", J.Int hits);
            ("simulations", J.Int sims);
          ]
      in
      ( [
          phase_point "cold" ~requests:n_cold ~elapsed:cold_t ~hits:cold_hits ~sims:cold_sims;
          phase_point "warm" ~requests:n_warm ~elapsed:warm_t ~hits:warm_hits ~sims:warm_sims;
        ],
        () ))

let write_results ~mode ~elapsed =
  let doc =
    J.Obj
      [
        ("schema_version", J.Int 1);
        ("generator", J.String "cpufree bench/main.exe");
        ("mode", J.String mode);
        ("jobs", J.Int (Parallel.default_jobs ()));
        ("gpu_counts", J.List (List.map (fun g -> J.Int g) gpu_counts));
        ("wall_clock_sec", J.Float elapsed);
        ("figures", J.List (List.rev !json_figures));
      ]
  in
  if mode = "micro" || mode = "micro-smoke" then begin
    (match validate_micro_doc doc with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "[micro] FATAL: BENCH_results.json violates the documented schema: %s\n%!"
        msg;
      exit 1);
    match validate_micro_topology_doc doc with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "[micro] FATAL: BENCH_results.json violates the documented schema: %s\n%!"
        msg;
      exit 1
  end;
  let has_collective =
    List.exists
      (function
        | J.Obj f -> List.assoc_opt "figure" f = Some (J.String "fig.collective")
        | _ -> false)
      !json_figures
  in
  if has_collective then begin
    match validate_collective_doc doc with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf
        "[collective] FATAL: BENCH_results.json violates the documented schema: %s\n%!" msg;
      exit 1
  end;
  let has_scaleout =
    List.exists
      (function
        | J.Obj f -> List.assoc_opt "figure" f = Some (J.String "fig.scaleout")
        | _ -> false)
      !json_figures
  in
  if has_scaleout then begin
    match validate_scaleout_doc doc with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf
        "[scaleout] FATAL: BENCH_results.json violates the documented schema: %s\n%!" msg;
      exit 1
  end;
  let has_chaos =
    List.exists
      (function
        | J.Obj f -> List.assoc_opt "figure" f = Some (J.String "fig.chaos")
        | _ -> false)
      !json_figures
  in
  if has_chaos then begin
    match validate_chaos_doc doc with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "[chaos] FATAL: BENCH_results.json violates the documented schema: %s\n%!"
        msg;
      exit 1
  end;
  let has_recovery =
    List.exists
      (function
        | J.Obj f -> List.assoc_opt "figure" f = Some (J.String "fig.recovery")
        | _ -> false)
      !json_figures
  in
  if has_recovery then begin
    match validate_recovery_doc doc with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf
        "[recovery] FATAL: BENCH_results.json violates the documented schema: %s\n%!" msg;
      exit 1
  end;
  let has_pdes =
    List.exists
      (function
        | J.Obj f -> List.assoc_opt "figure" f = Some (J.String "fig.pdes")
        | _ -> false)
      !json_figures
  in
  if has_pdes then begin
    match validate_pdes_doc doc with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "[pdes] FATAL: BENCH_results.json violates the documented schema: %s\n%!"
        msg;
      exit 1
  end;
  let has_autotune =
    List.exists
      (function
        | J.Obj f -> List.assoc_opt "figure" f = Some (J.String "fig.autotune")
        | _ -> false)
      !json_figures
  in
  if has_autotune then begin
    match validate_autotune_doc doc with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "[autotune] FATAL: BENCH_results.json violates the documented schema: %s\n%!"
        msg;
      exit 1
  end;
  let has_serve =
    List.exists
      (function
        | J.Obj f -> List.assoc_opt "figure" f = Some (J.String "fig.serve")
        | _ -> false)
      !json_figures
  in
  if has_serve then begin
    match validate_serve_doc doc with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "[serve] FATAL: BENCH_results.json violates the documented schema: %s\n%!"
        msg;
      exit 1
  end;
  let has_profile =
    List.exists
      (function
        | J.Obj f -> List.assoc_opt "figure" f = Some (J.String "fig.profile")
        | _ -> false)
      !json_figures
  in
  if has_profile then begin
    match validate_profile_doc doc with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "[profile] FATAL: BENCH_results.json violates the documented schema: %s\n%!"
        msg;
      exit 1
  end;
  let oc = open_out "BENCH_results.json" in
  J.to_channel oc doc;
  close_out oc;
  Printf.eprintf "[bench] wrote BENCH_results.json (%d figures)\n%!" (List.length !json_figures)

(* Every token the harness understands; anything else is a typo the run
   must refuse loudly — a silently ignored "chaso" would regenerate the
   default figure set and look like a passing chaos run. *)
let known_args =
  [
    "quick";
    "json";
    "bechamel";
    "smoke";
    "micro";
    "scaleout";
    "chaos";
    "recovery";
    "pdes";
    "autotune";
    "collective";
    "profile";
    "serve";
  ]

let () =
  let args = Array.to_list Sys.argv in
  (match List.filter (fun a -> not (List.mem a known_args)) (List.tl args) with
  | [] -> ()
  | bad :: _ ->
    Printf.eprintf "unknown bench argument %S\n" bad;
    Printf.eprintf "usage: main.exe [%s]\n" (String.concat "|" known_args);
    exit 2);
  let quick = List.mem "quick" args in
  let json = List.mem "json" args in
  let with_bechamel = List.mem "bechamel" args in
  if List.mem "serve" args then begin
    let smoke = List.mem "smoke" args in
    let t_start = wall () in
    fig_serve ~smoke ();
    write_results ~mode:(if smoke then "serve-smoke" else "serve") ~elapsed:(wall () -. t_start);
    exit 0
  end;
  if List.mem "micro" args then begin
    let smoke = List.mem "smoke" args in
    let t_start = wall () in
    run_micro ~smoke;
    write_results ~mode:(if smoke then "micro-smoke" else "micro") ~elapsed:(wall () -. t_start);
    exit 0
  end;
  if List.mem "scaleout" args then begin
    let smoke = List.mem "smoke" args in
    let t_start = wall () in
    fig_scaleout ~smoke ();
    write_results
      ~mode:(if smoke then "scaleout-smoke" else "scaleout")
      ~elapsed:(wall () -. t_start);
    exit 0
  end;
  if List.mem "chaos" args then begin
    let smoke = List.mem "smoke" args in
    let t_start = wall () in
    fig_chaos ~smoke ();
    write_results ~mode:(if smoke then "chaos-smoke" else "chaos") ~elapsed:(wall () -. t_start);
    exit 0
  end;
  if List.mem "recovery" args then begin
    let smoke = List.mem "smoke" args in
    let t_start = wall () in
    fig_recovery ~smoke ();
    write_results
      ~mode:(if smoke then "recovery-smoke" else "recovery")
      ~elapsed:(wall () -. t_start);
    exit 0
  end;
  if List.mem "pdes" args then begin
    let smoke = List.mem "smoke" args in
    let t_start = wall () in
    fig_pdes ~smoke ();
    write_results ~mode:(if smoke then "pdes-smoke" else "pdes") ~elapsed:(wall () -. t_start);
    exit 0
  end;
  if List.mem "autotune" args then begin
    let smoke = List.mem "smoke" args in
    let t_start = wall () in
    fig_autotune ~smoke ();
    write_results
      ~mode:(if smoke then "autotune-smoke" else "autotune")
      ~elapsed:(wall () -. t_start);
    exit 0
  end;
  if List.mem "collective" args then begin
    let smoke = List.mem "smoke" args in
    let t_start = wall () in
    fig_collective ~smoke ();
    write_results
      ~mode:(if smoke then "collective-smoke" else "collective")
      ~elapsed:(wall () -. t_start);
    exit 0
  end;
  if List.mem "profile" args then begin
    let smoke = List.mem "smoke" args in
    let t_start = wall () in
    fig_profile ~smoke ();
    write_results
      ~mode:(if smoke then "profile-smoke" else "profile")
      ~elapsed:(wall () -. t_start);
    exit 0
  end;
  let t_start = wall () in
  timelines ();
  fig2_2a ();
  fig2_2b ();
  let fig61 = fig6_1 () in
  if not quick then ignore (fig6_2 ());
  let dace1d = fig6_3a () in
  let dace2d = fig6_3b () in
  headline fig61 dace1d dace2d;
  if not quick then begin
    supplementary_norm ();
    ablations ()
  end;
  fig_scaleout ~smoke:quick ();
  fig_collective ~smoke:quick ();
  fig_autotune ~smoke:quick ();
  if with_bechamel || not quick then bechamel_suite ();
  let elapsed = wall () -. t_start in
  if json then write_results ~mode:(if quick then "quick" else "full") ~elapsed;
  Printf.eprintf "[bench] jobs=%d wall-clock %.2fs\n%!" (Parallel.default_jobs ()) elapsed;
  Printf.printf "\nDone. See EXPERIMENTS.md for the per-figure comparison with the paper.\n"
