(* Command-line driver for the CPU-Free simulator.

   cpufree_run stencil  --variant cpu-free --dims 2d:2048x2048 --gpus 8 ...
   cpufree_run dace     --app jacobi2d --arm cpu-free --gpus 8 ...
   cpufree_run machine  (print the simulated architecture)
   cpufree_run serve    --socket /tmp/cpufree.sock   (scenario daemon)
   cpufree_run client   --socket ... --scenario "stencil variant=cpu-free ..."

   Every subcommand parses the same machine/fault/observability options
   (--arch, --topology, --gpus, --faults, --fault-seed, --trace-out,
   --metrics-out) through one shared spec table. The measured-run commands
   assemble their flags into a first-class [Cpufree_core.Scenario.t] and
   execute through the same [of_scenario] constructors the serving daemon
   uses, so CLI and daemon cannot drift apart. *)

module E = Cpufree_engine
module G = Cpufree_gpu
module S = Cpufree_stencil
module D = Cpufree_dace
module Obs = Cpufree_obs
module Measure = Cpufree_core.Measure
module Env = Cpufree_core.Sim_env
module Scenario = Cpufree_core.Scenario
module Serve = Cpufree_serve
module Fault = Cpufree_fault.Fault
module Time = E.Time
open Cmdliner

(* --- shared machine/fault/observability options --------------------------- *)

(* Every subcommand sees the same option set, resolved and validated in one
   place so a bad combination (e.g. "--topology dgx:3 --gpus 8") exits with
   the same usage message everywhere. [arch_name] keeps the user's spelling
   for the scenario record, which carries names, not resolved values. *)
type common = {
  arch : G.Arch.t;
  arch_name : string;
  topology : Cpufree_machine.Topology.spec;
  gpus : int;
  faults : Fault.spec option;
  fault_seed : int;
  trace_out : string option;
  metrics_out : string option;
  pdes : Obs.Sim_env.pdes option;
}

let gpus_arg =
  let doc = "Number of simulated GPUs." in
  Arg.(value & opt int 8 & info [ "gpus"; "g" ] ~docv:"N" ~doc)

let arch_arg =
  let doc = "Simulated device architecture (a100 or h100)." in
  Arg.(value & opt string "a100" & info [ "arch" ] ~docv:"ARCH" ~doc)

let topology_arg =
  let doc =
    "Machine topology: hgx (single-node NVSwitch all-to-all, the default), ring, pcie, \
     dgx[:NODES] (multi-node cluster joined by InfiniBand; GPUs split evenly across nodes), \
     fat-tree[:ARITY[:RAILS[:GPN]]] (k-ary leaf/spine Clos, RAILS parallel NIC planes, GPN \
     GPUs per node; defaults 4:1:8) or dragonfly[:A:P:H[:GPN]] (groups of A routers with P \
     nodes each and H global links per router; defaults 4:2:2:8). The cluster shapes route \
     structurally on demand, so --gpus can go to 1024 and beyond."
  in
  Arg.(value & opt string "hgx" & info [ "topology"; "t" ] ~docv:"TOPO" ~doc)

let faults_arg =
  let doc =
    "Deterministic fault-injection spec: comma-separated clauses drop=P, delay=P@NS, \
     straggler=GxM, flap=PERIOD_US@DUTYxM, nic=START_US+DUR_US, kill=GPU@T_US, \
     linkfail=SRC-DST@T_US, switchfail=NAME@T_US, retry=TIMEOUT_USxN, backoff=F (or 'none'). \
     The fail-stop clauses (kill/linkfail/switchfail) permanently stop a GPU / kill every \
     link between two named topology vertices / kill a named switch and its links at the \
     given virtual time. Example: drop=0.02,delay=0.1@2000,kill=1@500."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)

let fault_seed_arg =
  let doc = "Fault-plan seed: a fixed seed makes repeated chaos runs bit-identical." in
  Arg.(value & opt int 1 & info [ "fault-seed" ] ~docv:"N" ~doc)

let trace_out_arg =
  let doc =
    "Write the run as Chrome/Perfetto trace-event JSON to $(docv): spans per lane, \
     put-to-delivery flow arrows, fault/stall instants, counter tracks. Load in \
     ui.perfetto.dev."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let metrics_out_arg =
  let doc = "Write the run's metrics registry as schema-validated JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let pdes_arg =
  let doc =
    "PDES driver: seq (sequential event loop), windowed (conservative windows), adaptive \
     (windows resized from observed lookahead) or optimistic (Time Warp). Overrides the \
     CPUFREE_PDES variable; all drivers produce bit-identical results."
  in
  Arg.(value & opt (some string) None & info [ "pdes" ] ~docv:"MODE" ~doc)

let resolve_pdes name =
  match Env.pdes_of_string name with
  | Ok mode -> mode
  | Error msg ->
    Printf.eprintf "bad --pdes mode %s\n" msg;
    exit 2

let resolve_arch name =
  match G.Arch.of_name name with
  | Some a -> a
  | None ->
    Printf.eprintf "unknown architecture %S (expected one of: %s)\n" name
      (String.concat ", " (List.map fst G.Arch.by_name));
    exit 2

(* Parse AND validate against the GPU count so a bad combination exits with a
   usage message instead of an uncaught exception mid-run. *)
let resolve_topology name ~gpus =
  match Cpufree_machine.Topology.spec_of_string name with
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    exit 2
  | Ok spec -> (
    match Cpufree_machine.Topology.validate spec ~gpus with
    | Ok () -> spec
    | Error msg ->
      Printf.eprintf "bad --topology/--gpus combination: %s\n" msg;
      exit 2)

let resolve_faults spec =
  match Fault.of_string spec with
  | Ok s -> s
  | Error msg ->
    Printf.eprintf "bad --faults spec: %s\n" msg;
    exit 2

let common_term =
  let make arch_name topo_name gpus faults fault_seed trace_out metrics_out pdes =
    {
      arch = resolve_arch arch_name;
      arch_name;
      topology = resolve_topology topo_name ~gpus;
      gpus;
      faults = Option.map resolve_faults faults;
      fault_seed;
      trace_out;
      metrics_out;
      pdes = Option.map resolve_pdes pdes;
    }
  in
  Term.(
    const make $ arch_arg $ topology_arg $ gpus_arg $ faults_arg $ fault_seed_arg
    $ trace_out_arg $ metrics_out_arg $ pdes_arg)

(* A fresh simulation environment for one run under these options: trace and
   metrics sinks exist exactly when an output file was requested, so runs
   without --trace-out/--metrics-out stay on the uninstrumented path. *)
let env_of_common c =
  let trace = if c.trace_out = None then None else Some (E.Trace.create ~flows:true ()) in
  let metrics = if c.metrics_out = None then None else Some (Obs.Metrics.create ()) in
  Env.make ~topology:c.topology ?faults:c.faults ~fault_seed:c.fault_seed ?trace ?metrics
    ?pdes:c.pdes ()

(* The same environment minus the observability sinks, for auxiliary runs
   (verification) that must not pollute the main run's artifacts. *)
let quiet_env c = Env.make ~topology:c.topology ?pdes:c.pdes ()

(* Write (and self-validate) whatever sinks the environment carries. *)
let write_observability c (env : Env.t) =
  (match (c.trace_out, env.Env.trace) with
  | Some file, Some tr ->
    let s = Obs.Perfetto.to_json_string ?metrics:env.Env.metrics tr in
    (match Cpufree_core.Trace_json.validate_string s with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "internal error: %s failed trace-schema validation: %s\n" file msg;
      exit 1);
    let oc = open_out file in
    output_string oc s;
    close_out oc;
    Printf.printf "wrote %s (load in ui.perfetto.dev)\n" file
  | _ -> ());
  match (c.metrics_out, env.Env.metrics) with
  | Some file, Some reg ->
    let oc = open_out file in
    let r = Cpufree_core.Metrics_json.emit ~indent:2 oc reg in
    close_out oc;
    (match r with
    | Ok () -> Printf.printf "wrote %s\n" file
    | Error msg ->
      Printf.eprintf "internal error: %s failed metrics-schema validation: %s\n" file msg;
      exit 1)
  | _ -> ()

let print_chaos_report (c : Measure.chaos) ~progress =
  let r = c.Measure.base in
  Printf.printf "%-22s %s after %s  (dropped=%d delayed=%d resent=%d retries=%d)\n"
    r.Measure.label
    (if c.Measure.completed then "completed" else "ABORTED")
    (Time.to_string r.Measure.total) c.Measure.dropped c.Measure.delayed c.Measure.resent
    c.Measure.retried;
  if Array.length progress > 0 then
    Printf.printf "  progress: [%s] / %d iterations\n"
      (String.concat "; " (Array.to_list (Array.map string_of_int progress)))
      r.Measure.iterations;
  List.iter (fun line -> Printf.printf "  %s\n" line) c.Measure.failure

let iters_arg =
  let doc = "Jacobi iterations / time steps." in
  Arg.(value & opt int 100 & info [ "iters"; "i" ] ~docv:"T" ~doc)

let timeline_arg =
  let doc = "Render an ASCII execution timeline after the run." in
  Arg.(value & flag & info [ "timeline" ] ~doc)

let chrome_arg =
  let doc =
    "Write the execution trace as Chrome trace-event JSON to $(docv) (legacy spans-only \
     format; prefer --trace-out)."
  in
  Arg.(value & opt (some string) None & info [ "chrome-trace" ] ~docv:"FILE" ~doc)

let maybe_write_chrome path trace =
  match path with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    output_string oc (E.Trace.to_chrome_json trace);
    close_out oc;
    Printf.printf "wrote %s (open in chrome://tracing or Perfetto)\n" file

let verify_arg =
  let doc = "Run with real data and check against the sequential reference." in
  Arg.(value & flag & info [ "verify" ] ~doc)

let dims_conv =
  let printer fmt d = Format.pp_print_string fmt (S.Problem.dims_to_string d) in
  Arg.conv
    ( (fun s -> Result.map_error (fun e -> `Msg e) (S.Problem.dims_of_string s)),
      printer )

let dims_arg =
  let doc = "Global domain: 2d:NXxNY or 3d:NXxNYxNZ." in
  Arg.(value & opt dims_conv (S.Problem.D2 { nx = 2048; ny = 2048 })
       & info [ "dims"; "d" ] ~docv:"DIMS" ~doc)

let print_timeline trace =
  print_string (E.Trace.render_ascii ~width:100 trace)

(* --- stencil command ------------------------------------------------------ *)

let variant_arg =
  let doc = "Execution scheme; 'all' compares every scheme." in
  Arg.(value & opt (some string) None & info [ "variant"; "v" ] ~docv:"VARIANT" ~doc)

let no_compute_arg =
  let doc = "Disable computation: measure the pure communication/sync floor." in
  Arg.(value & flag & info [ "no-compute" ] ~doc)

(* One scenario per selected execution scheme: the flag table becomes a
   [Scenario.t] and runs through [Harness.of_scenario] — the daemon's path.
   Artifact sinks are only requested for single-variant runs (a shared sink
   across a comparison sweep would interleave runs). *)
let stencil_scenario common ~single ~iters ~dims ~no_compute kind =
  Scenario.make ~arch:common.arch_name ~topology:common.topology ~gpus:common.gpus
    ?faults:common.faults ~fault_seed:common.fault_seed ?pdes:common.pdes
    ~trace:(single && common.trace_out <> None)
    ~metrics:(single && common.metrics_out <> None)
    (Scenario.Stencil
       {
         variant = S.Variants.name kind;
         dims = S.Problem.dims_to_spec_string dims;
         iters;
         no_compute;
       })

let run_stencil common iters dims variant no_compute verify timeline chrome =
  let arch = common.arch and gpus = common.gpus in
  let kinds =
    match variant with
    | None | Some "all" -> S.Variants.all
    | Some name -> (
      match S.Variants.of_name name with
      | Some k -> [ k ]
      | None ->
        Printf.eprintf "unknown variant %S; use one of: %s, all\n" name
          (String.concat ", " (List.map S.Variants.name S.Variants.all));
        exit 2)
  in
  let single = List.length kinds = 1 in
  let interpret kind =
    match
      S.Harness.of_scenario (stencil_scenario common ~single ~iters ~dims ~no_compute kind)
    with
    | Ok s -> s
    | Error e ->
      Printf.eprintf "%s\n" e;
      exit 2
  in
  match common.faults with
  | Some spec ->
    Printf.printf "chaos run: faults=%s seed=%d\n" (Fault.to_string spec) common.fault_seed;
    List.iter
      (fun kind ->
        let hsc = interpret kind in
        let cr = S.Harness.run_scenario_chaos hsc in
        print_chaos_report cr.S.Harness.chaos ~progress:cr.S.Harness.progress;
        if single then write_observability common (S.Harness.scenario_sim_env hsc))
      kinds;
    0
  | None ->
    let results =
      List.map
        (fun kind ->
          let hsc = interpret kind in
          let r, trace = S.Harness.run_scenario_traced hsc in
          if timeline && single then print_timeline trace;
          if single then begin
            maybe_write_chrome chrome trace;
            write_observability common (S.Harness.scenario_sim_env hsc)
          end;
          if verify then begin
            let backed =
              S.Problem.make ~compute:(not no_compute) ~backed:true dims ~iterations:iters
            in
            match S.Harness.verify_env ~arch ~env:(quiet_env common) kind backed ~gpus with
            | Ok err ->
              Printf.printf "%-22s verification OK (max |err| = %.2e)\n" (S.Variants.name kind)
                err
            | Error m ->
              Printf.printf "%-22s verification FAILED: %s\n" (S.Variants.name kind) m
          end;
          r)
        kinds
    in
    Format.printf "%a"
      (fun fmt ->
        Measure.pp_table fmt
          ~header:(Printf.sprintf "%s on %d GPUs" (S.Problem.dims_to_string dims) gpus))
      results;
    0

let stencil_cmd =
  let doc = "Run the hand-written multi-GPU Jacobi stencil variants (paper §6.1)." in
  Cmd.v
    (Cmd.info "stencil" ~doc)
    Term.(
      const run_stencil $ common_term $ iters_arg $ dims_arg $ variant_arg $ no_compute_arg
      $ verify_arg $ timeline_arg $ chrome_arg)

(* --- dace command ---------------------------------------------------------- *)

let app_arg =
  let doc =
    "Benchmark program: jacobi1d, jacobi2d or heat3d — or, with --auto, smoother (a global \
     single-address-space program only the generic pass can distribute)."
  in
  Arg.(value & opt string "jacobi2d" & info [ "app"; "a" ] ~docv:"APP" ~doc)

let arm_arg =
  let doc = "Pipeline arm: baseline (MPI, CPU-controlled) or cpu-free." in
  Arg.(value & opt string "cpu-free" & info [ "arm" ] ~docv:"ARM" ~doc)

let size_arg =
  let doc = "Problem size: total elements (1D) or square edge (2D)." in
  Arg.(value & opt int 4096 & info [ "size"; "n" ] ~docv:"N" ~doc)

let emit_arg =
  let doc = "Print the CUDA-like code the chosen pipeline generates." in
  Arg.(value & flag & info [ "emit-code" ] ~doc)

let auto_arg =
  let doc =
    "Ignore the hand-built pipeline: analyze the program, enumerate candidate transformation \
     sequences (offload on/off, fusion, sharding, persistent-kernel variants), pick the \
     cheapest by simulating each candidate, report the chosen plan against the hand-built \
     cost, then execute the winner."
  in
  Arg.(value & flag & info [ "auto" ] ~doc)

let specialize_arg =
  let doc =
    "Apply thread-block specialization to the persistent kernel (communication on a dedicated \
     TB group, overlapping the interior computation)."
  in
  Arg.(value & flag & info [ "specialize-tb" ] ~doc)

(* dace --auto: the generic pass end to end. Search under a quiet probe of
   the same topology (the probe pins the PDES mode, so the choice is the
   same whatever --pdes says), report every candidate and the margin over
   the hand-built pipeline, then execute the winner under the full
   environment. *)
let run_dace_auto common iters app_name arm size specialize_tb timeline chrome =
  let gpus = common.gpus in
  let sdfg, hand, label =
    match app_name with
    | "smoother" ->
      (D.Programs.smoother_global { D.Programs.sm_n = size; sm_steps = iters }, None, "smoother")
    | _ ->
      let app =
        match app_name with
        | "jacobi1d" -> D.Pipeline.Jacobi1d { D.Programs.n_global = size; tsteps = iters }
        | "jacobi2d" ->
          D.Pipeline.Jacobi2d { D.Programs.nx_global = size; ny_global = size; tsteps = iters }
        | "heat3d" ->
          D.Pipeline.Heat3d { D.Programs.nx3 = size; ny3 = size; nz3 = size; tsteps3 = iters }
        | other ->
          Printf.eprintf "unknown app %S (expected jacobi1d, jacobi2d, heat3d or smoother)\n"
            other;
          exit 2
      in
      let plan = D.Pipeline.hand_plan ~specialize_tb arm ~gpus in
      (D.Pipeline.frontend app arm ~gpus, Some plan, D.Pipeline.app_name app)
  in
  let probe = quiet_env common in
  let a = D.Analysis.analyze sdfg in
  Printf.printf "%s: %d maps, comm=%s, %s\n" label (List.length a.D.Analysis.maps)
    (D.Analysis.comm_form_to_string a.D.Analysis.comm)
    (if a.D.Analysis.distributed then "distributed" else "global");
  match D.Autotune.search ~arch:common.arch ~env:probe sdfg ~gpus ~iterations:iters with
  | Error e ->
    Printf.eprintf "autotune failed: %s\n" e;
    exit 1
  | Ok d ->
    List.iter
      (fun (p, t) ->
        Printf.printf "  %c %-42s %s\n"
          (if p = d.D.Autotune.best then '*' else ' ')
          (D.Autotune.plan_to_string p) (Time.to_string t))
      d.D.Autotune.evaluated;
    Printf.printf "chosen plan: %s (predicted %s)\n"
      (D.Autotune.plan_to_string d.D.Autotune.best)
      (Time.to_string d.D.Autotune.predicted);
    (match hand with
    | None -> ()
    | Some plan ->
      let hand_built = D.Autotune.build plan sdfg in
      let hand_cost =
        Measure.probe_env ~arch:common.arch ~env:probe ~label:"hand" ~gpus ~iterations:iters
          hand_built.D.Exec.program
      in
      Printf.printf "hand-built %s: %s — searched plan %s\n"
        (D.Autotune.plan_to_string plan) (Time.to_string hand_cost)
        (if Time.(d.D.Autotune.predicted < hand_cost) then "beats it" else "matches it"));
    let built = D.Autotune.build d.D.Autotune.best sdfg in
    let env = env_of_common common in
    let r, trace =
      Measure.run_traced_env ~arch:common.arch ~env ~label:(label ^ "/auto")
        ~gpus:d.D.Autotune.best.D.Autotune.gpus_used ~iterations:iters built.D.Exec.program
    in
    if timeline then print_timeline trace;
    maybe_write_chrome chrome trace;
    write_observability common env;
    Format.printf "%a@." Measure.pp_result r;
    0

let run_dace common iters app_name arm_name size emit auto specialize_tb verify timeline chrome
    =
  let gpus = common.gpus in
  let arm =
    match arm_name with
    | "baseline" | "mpi" -> D.Pipeline.Baseline_mpi
    | "cpu-free" | "cpufree" -> D.Pipeline.Cpu_free
    | other ->
      Printf.eprintf "unknown arm %S (expected baseline or cpu-free)\n" other;
      exit 2
  in
  if auto then begin
    if emit || verify then
      Printf.eprintf "note: --emit-code/--verify are ignored with --auto\n";
    run_dace_auto common iters app_name arm size specialize_tb timeline chrome
  end
  else begin
  (* The measured run goes through the first-class scenario (the daemon's
     path); [of_scenario] re-validates app/arm and compiles the program. *)
  let sc =
    Scenario.make ~arch:common.arch_name ~topology:common.topology ~gpus
      ?faults:common.faults ~fault_seed:common.fault_seed ?pdes:common.pdes
      ~trace:(common.trace_out <> None)
      ~metrics:(common.metrics_out <> None)
      (Scenario.Dace { app = app_name; arm = arm_name; size; iters; specialize_tb })
  in
  let dsc =
    match D.Pipeline.of_scenario sc with
    | Ok d -> d
    | Error e ->
      Printf.eprintf "%s\n" e;
      exit 2
  in
  let app =
    match app_name with
    | "jacobi1d" -> D.Pipeline.Jacobi1d { D.Programs.n_global = size; tsteps = iters }
    | "jacobi2d" ->
      D.Pipeline.Jacobi2d { D.Programs.nx_global = size; ny_global = size; tsteps = iters }
    | "heat3d" ->
      D.Pipeline.Heat3d { D.Programs.nx3 = size; ny3 = size; nz3 = size; tsteps3 = iters }
    | other ->
      Printf.eprintf "unknown app %S (expected jacobi1d, jacobi2d or heat3d)\n" other;
      exit 2
  in
  if emit then begin
    let sdfg = D.Pipeline.compile_sdfg app arm ~gpus in
    match arm with
    | D.Pipeline.Baseline_mpi -> print_string (D.Codegen.emit_baseline sdfg)
    | D.Pipeline.Cpu_free -> (
      match D.Persistent_fusion.apply sdfg with
      | Ok p ->
        let p = if specialize_tb then fst (D.Persistent_fusion.specialize_tb p) else p in
        print_string (D.Codegen.emit_persistent p)
      | Error e ->
        Printf.eprintf "persistent fusion failed: %s\n" e;
        exit 1)
  end;
  if verify then begin
    match D.Pipeline.verify_env ~env:(quiet_env common) ~specialize_tb app arm ~gpus with
    | Ok err -> Printf.printf "verification OK (max |err| = %.2e)\n" err
    | Error m ->
      Printf.printf "verification FAILED: %s\n" m;
      exit 1
  end;
  match common.faults with
  | Some spec ->
    Printf.printf "chaos run: faults=%s seed=%d\n" (Fault.to_string spec) common.fault_seed;
    let c = D.Pipeline.run_scenario_chaos dsc in
    print_chaos_report c ~progress:[||];
    write_observability common dsc.D.Pipeline.sc_env;
    0
  | None ->
    let r, trace = D.Pipeline.run_scenario_traced dsc in
    if timeline then print_timeline trace;
    maybe_write_chrome chrome trace;
    write_observability common dsc.D.Pipeline.sc_env;
    Format.printf "%a@." Measure.pp_result r;
    0
  end

let dace_cmd =
  let doc = "Compile and run a distributed DaCe benchmark through a pipeline arm (paper §6.2)." in
  Cmd.v
    (Cmd.info "dace" ~doc)
    Term.(
      const run_dace $ common_term $ iters_arg $ app_arg $ arm_arg $ size_arg $ emit_arg
      $ auto_arg $ specialize_arg $ verify_arg $ timeline_arg $ chrome_arg)

(* --- machine command -------------------------------------------------------- *)

let json_arg =
  let doc =
    "Emit the machine description (endpoints, links, routes) as schema-checked JSON instead of \
     the text summary."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let run_machine common json =
  let arch = common.arch in
  let topo =
    Cpufree_machine.Topology.instantiate common.topology
      ~profile:(G.Arch.fabric_profile arch) ~gpus:common.gpus
  in
  if json then begin
    match Cpufree_core.Machine_json.emit stdout topo with
    | Ok () -> 0
    | Error msg ->
      Printf.eprintf "machine description failed schema validation: %s\n" msg;
      1
  end
  else begin
    Format.printf "%a@." G.Arch.pp arch;
    let f = Time.to_string in
    Printf.printf "  kernel launch:          %s\n" (f arch.G.Arch.kernel_launch);
    Printf.printf "  cooperative launch:     %s\n" (f arch.G.Arch.coop_launch);
    Printf.printf "  stream synchronize:     %s\n" (f arch.G.Arch.stream_sync);
    Printf.printf "  host barrier:           %s\n" (f arch.G.Arch.host_barrier);
    Printf.printf "  grid.sync():            %s\n" (f arch.G.Arch.grid_sync);
    Printf.printf "  host-initiated latency: %s\n" (f arch.G.Arch.host_initiated_latency);
    Printf.printf "  GPU-initiated latency:  %s\n" (f arch.G.Arch.gpu_initiated_latency);
    Printf.printf "  NVSHMEM signal:         %s\n" (f arch.G.Arch.nvshmem_signal);
    Printf.printf "  co-resident blocks:     %d\n" (G.Arch.co_resident_blocks arch);
    Format.printf "%a@." Cpufree_machine.Topology.pp topo;
    Format.printf "%a" Cpufree_machine.Topology.pp_links topo;
    0
  end

let machine_cmd =
  let doc =
    "Print the simulated machine: cost-model parameters and the topology graph (or the full \
     description as JSON with --json)."
  in
  Cmd.v (Cmd.info "machine" ~doc) Term.(const run_machine $ common_term $ json_arg)

(* --- serve command ---------------------------------------------------------- *)

let socket_arg =
  let doc = "Unix domain socket path the daemon binds (or the client connects to)." in
  Arg.(required & opt (some string) None & info [ "socket"; "s" ] ~docv:"PATH" ~doc)

let cache_arg =
  let doc = "Result-cache capacity (entries, LRU)." in
  Arg.(value & opt int 128 & info [ "cache" ] ~docv:"N" ~doc)

let max_queue_arg =
  let doc = "Admission bound: in-flight simulations beyond which runs are refused." in
  Arg.(value & opt int 64 & info [ "max-queue" ] ~docv:"N" ~doc)

let serve_jobs_arg =
  let doc = "Simulation pool width (default: CPUFREE_JOBS or the host core count)." in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let run_serve socket cache max_queue jobs =
  if cache < 1 then begin
    Printf.eprintf "bad --cache %d: capacity must be positive\n" cache;
    exit 2
  end;
  if max_queue < 1 then begin
    Printf.eprintf "bad --max-queue %d: bound must be positive\n" max_queue;
    exit 2
  end;
  let cfg =
    { (Serve.Server.default_config ~socket_path:socket) with
      Serve.Server.cache_capacity = cache;
      max_queue;
    }
  in
  let cfg = match jobs with None -> cfg | Some j -> { cfg with Serve.Server.jobs = j } in
  Printf.printf "serving on %s (cache=%d entries, max-queue=%d, jobs=%d)\n%!" socket
    cfg.Serve.Server.cache_capacity cfg.Serve.Server.max_queue cfg.Serve.Server.jobs;
  Serve.Server.run cfg;
  Printf.printf "shut down\n";
  0

let serve_cmd =
  let doc =
    "Run the scenario daemon: a long-running simulation service over a Unix socket, batching \
     concurrent requests onto a shared domain pool and memoizing results by canonical \
     scenario hash."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(const run_serve $ socket_arg $ cache_arg $ max_queue_arg $ serve_jobs_arg)

(* --- client command --------------------------------------------------------- *)

let scenario_arg =
  let doc =
    "Scenario spec in the canonical textual form, e.g. 'stencil variant=cpu-free \
     dims=2d:512x512 iters=30 gpus=4' or 'dace app=jacobi2d arm=cpu-free size=1024 \
     iters=20'. See Cpufree_core.Scenario."
  in
  Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"SPEC" ~doc)

let repeat_arg =
  let doc = "Submit the scenario $(docv) times (repeats exercise the result cache)." in
  Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N" ~doc)

let stats_flag =
  let doc = "Print the daemon's request/cache counters." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let shutdown_flag =
  let doc = "Ask the daemon to drain and exit (after any --scenario requests)." in
  Arg.(value & flag & info [ "shutdown" ] ~doc)

let print_run_response = function
  | Serve.Protocol.Ok_resp
      { cached; digest; body = Serve.Protocol.Run_result p; _ } ->
    Printf.printf "%-26s gpus=%d iters=%d total=%s per-iter=%s overlap=%.1f%% bytes=%d%s\n"
      p.Serve.Protocol.label p.Serve.Protocol.gpus p.Serve.Protocol.iterations
      (Time.to_string (Time.ns p.Serve.Protocol.total_ns))
      (Time.to_string (Time.ns p.Serve.Protocol.per_iter_ns))
      (100.0 *. p.Serve.Protocol.overlap)
      p.Serve.Protocol.bytes_moved
      (if cached then "  [cached]" else "");
    (match p.Serve.Protocol.chaos with
    | None -> ()
    | Some c ->
      Printf.printf "  chaos: %s dropped=%d delayed=%d resent=%d retries=%d\n"
        (if c.Serve.Protocol.completed then "completed" else "ABORTED")
        c.Serve.Protocol.dropped c.Serve.Protocol.delayed c.Serve.Protocol.resent
        c.Serve.Protocol.retried);
    (match digest with Some d -> Printf.printf "  digest: %s\n" d | None -> ());
    true
  | Serve.Protocol.Ok_resp _ ->
    Printf.eprintf "unexpected response body\n";
    false
  | Serve.Protocol.Error_resp { message; _ } ->
    Printf.eprintf "error: %s\n" message;
    false
  | Serve.Protocol.Overload_resp _ ->
    Printf.eprintf "overloaded: the daemon refused the run; retry later\n";
    false

let run_client socket scenario repeat stats shutdown =
  if scenario = None && not stats && not shutdown then begin
    Printf.eprintf "nothing to do: pass --scenario, --stats and/or --shutdown\n";
    exit 2
  end;
  let sc =
    match scenario with
    | None -> None
    | Some spec -> (
      match Scenario.of_string spec with
      | Ok sc -> Some sc
      | Error e ->
        Printf.eprintf "bad --scenario: %s\n" e;
        exit 2)
  in
  match Serve.Client.connect socket with
  | Error e ->
    Printf.eprintf "%s\n" e;
    1
  | Ok c ->
    let ok = ref true in
    (match sc with
    | None -> ()
    | Some sc ->
      for id = 1 to max 1 repeat do
        match Serve.Client.run c ~id sc with
        | Ok resp -> if not (print_run_response resp) then ok := false
        | Error e ->
          Printf.eprintf "%s\n" e;
          ok := false
      done);
    if stats then begin
      match Serve.Client.stats c ~id:0 with
      | Ok s ->
        Printf.printf
          "stats: requests=%d hits=%d misses=%d coalesced=%d overloads=%d errors=%d \
           simulations=%d cache=%d\n"
          s.Serve.Protocol.requests s.Serve.Protocol.hits s.Serve.Protocol.misses
          s.Serve.Protocol.coalesced s.Serve.Protocol.overloads s.Serve.Protocol.errors
          s.Serve.Protocol.simulations s.Serve.Protocol.cache_entries
      | Error e ->
        Printf.eprintf "%s\n" e;
        ok := false
    end;
    if shutdown then begin
      match Serve.Client.shutdown c ~id:0 with
      | Ok () -> Printf.printf "daemon shut down\n"
      | Error e ->
        Printf.eprintf "%s\n" e;
        ok := false
    end;
    Serve.Client.close c;
    if !ok then 0 else 1

let client_cmd =
  let doc = "Submit scenarios to a running daemon (and/or query its counters)." in
  Cmd.v
    (Cmd.info "client" ~doc)
    Term.(
      const run_client $ socket_arg $ scenario_arg $ repeat_arg $ stats_flag $ shutdown_flag)

(* --- entry ------------------------------------------------------------------- *)

let () =
  let doc = "CPU-Free multi-GPU execution model simulator (paper reproduction)" in
  let info = Cmd.info "cpufree_run" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info [ stencil_cmd; dace_cmd; machine_cmd; serve_cmd; client_cmd ]
  in
  (* eval_value, not eval': a command-line the parser rejects (unknown flag,
     bad option value, unknown subcommand) must exit 2 — cmdliner has
     already printed the offending token and a usage line on stderr. *)
  exit
    (match Cmd.eval_value group with
    | Ok (`Ok code) -> code
    | Ok (`Version | `Help) -> 0
    | Error (`Parse | `Term) -> 2
    | Error `Exn -> 125)
