(* The compiler side of the paper, end to end: build the distributed Jacobi
   2D program in both frontend forms, walk it through the transformation
   pipeline, print the CUDA-like code each backend generates, and race the
   two on the simulated machine.

     dune exec examples/dace_pipeline.exe *)

module D = Cpufree_dace
module Measure = Cpufree_core.Measure

let gpus = 4
let app = D.Pipeline.Jacobi2d { D.Programs.nx_global = 1024; ny_global = 1024; tsteps = 20 }

let banner s =
  Printf.printf "\n%s\n%s\n" s (String.make (String.length s) '-')

let () =
  banner "1. Frontend (MPI form, as upstream distributed DaCe writes it)";
  let mpi_sdfg = D.Pipeline.frontend app D.Pipeline.Baseline_mpi ~gpus in
  Format.printf "%a@." D.Sdfg.pp_summary mpi_sdfg;

  banner "2. Baseline pipeline: GPUTransform + MapFusion -> CPU-controlled code";
  let baseline_sdfg = D.Pipeline.compile_sdfg app D.Pipeline.Baseline_mpi ~gpus in
  print_string (D.Codegen.emit_baseline baseline_sdfg);

  banner "3. CPU-Free pipeline: NVSHMEM nodes + NVSHMEMArray + expansion + persistent fusion";
  let free_sdfg = D.Pipeline.compile_sdfg app D.Pipeline.Cpu_free ~gpus in
  (match D.Persistent_fusion.apply free_sdfg with
  | Ok p ->
    Printf.printf "grid barriers per iteration: %d\n\n" (D.Persistent_fusion.barrier_count p);
    print_string (D.Codegen.emit_persistent p)
  | Error e -> failwith e);

  banner "4. Race on the simulated machine";
  let b = D.Pipeline.run_env app D.Pipeline.Baseline_mpi ~gpus in
  let f = D.Pipeline.run_env app D.Pipeline.Cpu_free ~gpus in
  Format.printf "%a@.%a@." Measure.pp_result b Measure.pp_result f;
  Printf.printf "speedup: %.1f%%\n" (Measure.speedup_pct ~baseline:b ~ours:f);

  banner "5. Verify both against the sequential reference";
  List.iter
    (fun arm ->
      let small = D.Pipeline.Jacobi2d { D.Programs.nx_global = 32; ny_global = 32; tsteps = 4 } in
      match D.Pipeline.verify_env small arm ~gpus with
      | Ok err -> Printf.printf "%-15s OK (max |err| = %.1e)\n" (D.Pipeline.arm_name arm) err
      | Error m -> Printf.printf "%-15s FAILED: %s\n" (D.Pipeline.arm_name arm) m)
    [ D.Pipeline.Baseline_mpi; D.Pipeline.Cpu_free ]
