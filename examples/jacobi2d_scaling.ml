(* The paper's flagship workload: 2D 5-point Jacobi on 8 simulated GPUs,
   comparing all six execution schemes (four CPU-controlled baselines,
   CPU-Free, and CPU-Free + PERKS caching) at the paper's three domain
   classes, then verifying the CPU-Free result against a sequential solve.

     dune exec examples/jacobi2d_scaling.exe *)

module S = Cpufree_stencil
module Measure = Cpufree_core.Measure

let gpus = 8
let iterations = 100

let class_of name nx = Printf.sprintf "%s (%dx%d per GPU)" name nx nx

let run_class name nx =
  Printf.printf "\n--- %s ---\n" (class_of name nx);
  let dims = S.Problem.weak_scale (S.Problem.D2 { nx; ny = nx }) ~gpus in
  let problem = S.Problem.make dims ~iterations in
  let results =
    List.map (fun kind -> S.Harness.run_env kind problem ~gpus) S.Variants.all
  in
  Format.printf "%a" (fun fmt -> Measure.pp_table fmt ~header:(class_of name nx)) results;
  match results with
  | copy :: _ ->
    let free = List.nth results 4 in
    Printf.printf "CPU-Free speedup over the fully CPU-controlled baseline: %.1f%%\n"
      (Measure.speedup_pct ~baseline:copy ~ours:free)
  | [] -> ()

let () =
  run_class "small" 256;
  run_class "medium" 2048;
  run_class "large" 8192;
  (* Numerical sanity: the CPU-Free scheme computes exactly what a sequential
     Jacobi solve computes. *)
  let problem = S.Problem.make ~backed:true (S.Problem.D2 { nx = 64; ny = 64 }) ~iterations:10 in
  match S.Harness.verify_env S.Variants.Cpu_free problem ~gpus with
  | Ok err -> Printf.printf "\nVerification vs sequential reference: OK (max |err| = %.1e)\n" err
  | Error m -> Printf.printf "\nVerification FAILED: %s\n" m
