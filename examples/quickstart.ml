(* Quickstart: write a CPU-Free program against the public API directly.

   We build a simulated 4-GPU machine, launch one persistent cooperative
   kernel per device with two specialized thread-block roles — a
   communication role that passes a token around the ring of PEs with
   NVSHMEM put+signal, and an inner role that "computes" — and show that the
   host does nothing between launch and join. Run with:

     dune exec examples/quickstart.exe *)

module E = Cpufree_engine
module G = Cpufree_gpu
module Nv = Cpufree_comm.Nvshmem
module Persistent = Cpufree_core.Persistent
module Time = E.Time

let gpus = 4
let rounds = 3

let () =
  (* 1. A machine: an engine (simulated clock) plus a runtime context with
     four A100-like devices on an NVSwitch fabric. *)
  let trace = E.Trace.create () in
  let eng = E.Engine.create ~trace () in
  let ctx = G.Runtime.create eng ~num_gpus:gpus () in

  (* 2. Symmetric state: a one-element token buffer and a signal per PE. *)
  let nv = Nv.init ctx in
  let token = Nv.sym_malloc nv ~label:"token" 1 in
  let ready = Nv.signal_malloc nv ~label:"ready" () in
  G.Buffer.set (Nv.local token ~pe:0) 0 1.0;

  (* 3. The kernel: every PE waits for the token, increments it, and puts it
     (with a signal) to the next PE — communication initiated entirely on
     device. The inner role burns compute concurrently and meets the comm
     role at grid.sync each round. *)
  let roles pe =
    let comm grid =
      for round = 1 to rounds do
        let expected = (round - 1) * gpus in
        if pe > 0 || round > 1 then
          Nv.signal_wait_ge nv ~pe ~sig_var:ready (expected + pe);
        let v = G.Buffer.get (Nv.local token ~pe) 0 in
        Printf.printf "  [%-7s] pe%d round %d holds token %.0f\n"
          (Time.to_string (E.Engine.now eng)) pe round v;
        (* Increment and pass it on, device-initiated. *)
        G.Buffer.set (Nv.local token ~pe) 0 (v +. 1.0);
        let next = (pe + 1) mod gpus in
        if not (pe = gpus - 1 && round = rounds) then
          Nv.putmem_signal_nbi nv ~from_pe:pe ~to_pe:next ~src:(Nv.local token ~pe)
            ~src_pos:0 ~dst:token ~dst_pos:0 ~len:1 ~sig_var:ready ~sig_op:Nv.Signal_set
            ~sig_value:(expected + pe + 1);
        G.Coop.sync grid
      done
    in
    let inner grid =
      let arch = G.Runtime.arch ctx in
      for _ = 1 to rounds do
        E.Engine.delay eng
          (G.Kernel.memory_bound_time arch ~elems:100_000 ~bytes_per_elem:8.0
             ~sm_fraction:0.98 ~efficiency:1.0);
        G.Coop.sync grid
      done
    in
    [ ("comm", comm); ("inner", inner) ]
  in

  (* 4. The whole host program: one cooperative launch, one join. *)
  let (_ : E.Engine.process) =
    E.Engine.spawn eng ~name:"host" (fun () ->
        Persistent.run_all ctx ~name:"ring" ~blocks:(Persistent.max_blocks ctx)
          ~threads_per_block:1024 ~roles)
  in
  Printf.printf "Launching a persistent ring kernel on %d simulated GPUs...\n" gpus;
  E.Engine.run eng;
  Printf.printf "Finished at simulated time %s.\n" (Time.to_string (E.Engine.now eng));
  Printf.printf "Bytes moved GPU-to-GPU: %d (all device-initiated)\n"
    (G.Interconnect.bytes_moved (G.Runtime.net ctx));
  Printf.printf "\nTimeline:\n%s" (E.Trace.render_ascii ~width:90 trace)
