(* Writing your own program against the compiler frontend.

   The canned benchmarks live in Cpufree_dace.Programs; this example builds a
   fresh SPMD program with the Builder eDSL — a damped smoothing filter over
   a distributed 1D signal with halo exchange — then drives it through the
   whole CPU-Free pipeline: NVSHMEMArray, in-kernel expansion, validation,
   GPUPersistentKernel fusion (optionally thread-block-specialized), and the
   persistent backend, with the generated CUDA-like kernel printed along the
   way.

     dune exec examples/custom_dace_program.exe *)

module D = Cpufree_dace
module Sdfg = D.Sdfg
module Sym = D.Symbolic
module Measure = Cpufree_core.Measure

let gpus = 4
let n_global = 1 lsl 20
let steps = 30
let n = n_global / gpus
let c = Sym.int
let t = Sym.sym "t"
let rank = Sym.sym "rank"

(* Halo exchange of array [arr], exactly like the paper's Listing 5.2:
   signaled single-element puts plus flag waits, guarded by rank position. *)
let exchange arr ~sig_up ~sig_down =
  let guard cond body = Sdfg.S_cond { cond; then_ = body } in
  [
    guard (Sym.Ge (rank, c 1))
      [
        Sdfg.S_lib
          (Sdfg.Nv_put
             {
               src = arr;
               src_region = Sdfg.single ~offset:(c 1);
               dst = arr;
               dst_region = Sdfg.single ~offset:(c (n + 1));
               to_pe = Sym.(rank - c 1);
               signal = Some (sig_down, Sdfg.Sig_set, t);
             });
      ];
    guard (Sym.Lt (rank, c (gpus - 1)))
      [
        Sdfg.S_lib
          (Sdfg.Nv_put
             {
               src = arr;
               src_region = Sdfg.single ~offset:(c n);
               dst = arr;
               dst_region = Sdfg.single ~offset:(c 0);
               to_pe = Sym.(rank + c 1);
               signal = Some (sig_up, Sdfg.Sig_set, t);
             });
      ];
    guard (Sym.Ge (rank, c 1))
      [ Sdfg.S_lib (Sdfg.Nv_signal_wait { signal = sig_up; ge_value = t }) ];
    guard (Sym.Lt (rank, c (gpus - 1)))
      [ Sdfg.S_lib (Sdfg.Nv_signal_wait { signal = sig_down; ge_value = t }) ];
  ]

let smooth src dst =
  Sdfg.S_map
    {
      Sdfg.m_var = "i";
      m_lo = c 1;
      m_hi = c n;
      m_schedule = Sdfg.Sequential;
      m_sem = Sdfg.Jacobi1d { src; dst };
      m_work = c 1;
    }

let build () =
  let b = D.Builder.create ~name:"smoother" in
  D.Builder.symbol b "N" n_global;
  D.Builder.array b "U" (c (n + 2));
  D.Builder.array b "V" (c (n + 2));
  List.iter (D.Builder.signal b) [ "sU_up"; "sU_down"; "sV_up"; "sV_down" ];
  let init arr =
    Sdfg.S_map
      {
        Sdfg.m_var = "i";
        m_lo = c 0;
        m_hi = c (n + 1);
        m_schedule = Sdfg.Sequential;
        m_sem = Sdfg.Init_global { dst = arr; global_off = Sym.(rank * c n) };
        m_work = c 1;
      }
  in
  D.Builder.state b "init" [ init "U"; init "V" ];
  D.Builder.time_loop b ~var:"t" ~from_:1 ~steps ~after:"init"
    ~body:
      [
        ("exch_U", exchange "U" ~sig_up:"sU_up" ~sig_down:"sU_down");
        ("smooth_V", [ smooth "U" "V" ]);
        ("exch_V", exchange "V" ~sig_up:"sV_up" ~sig_down:"sV_down");
        ("smooth_U", [ smooth "V" "U" ]);
      ];
  D.Builder.finish b ~start:"init"

let () =
  let sdfg = build () in
  Format.printf "frontend: %a@." Sdfg.pp_summary sdfg;

  (* The CPU-Free pipeline, pass by pass. *)
  let sdfg = D.Transforms.gpu_transform sdfg in
  let sdfg = D.Transforms.nvshmem_array sdfg in
  let sdfg = D.Transforms.expand_nvshmem sdfg in
  D.Validate.check_exn ~require_symmetric:true sdfg;
  match D.Persistent_fusion.apply sdfg with
  | Error e -> failwith e
  | Ok fused ->
    let specialized, pairs = D.Persistent_fusion.specialize_tb fused in
    Printf.printf "persistent fusion: %d barriers/iter; specialization fused %d pairs\n\n"
      (D.Persistent_fusion.barrier_count fused)
      pairs;
    print_string (D.Codegen.emit_persistent specialized);

    (* Execute with real data and spot-check against a sequential smoother. *)
    let built = D.Exec.build_persistent ~backed:true specialized in
    let r = Measure.run_env ~label:"smoother" ~gpus ~iterations:steps built.D.Exec.program in
    Format.printf "@.%a@." Measure.pp_result r;

    let reference =
      let a = ref (Array.init (n_global + 2) D.Exec.init_value) in
      let b = ref (Array.copy !a) in
      for _ = 1 to steps do
        for _half = 1 to 2 do
          for i = 1 to n_global do
            !b.(i) <- (!a.(i - 1) +. !a.(i) +. !a.(i + 1)) /. 3.0
          done;
          let tmp = !a in
          a := !b;
          b := tmp
        done
      done;
      !a
    in
    let worst = ref 0.0 in
    for pe = 0 to gpus - 1 do
      match built.D.Exec.read_array "U" ~pe with
      | None -> failwith "missing U"
      | Some buf ->
        for i = 1 to n do
          let err =
            Float.abs (Cpufree_gpu.Buffer.get buf i -. reference.((pe * n) + i))
          in
          if err > !worst then worst := err
        done
    done;
    Printf.printf "max |err| vs sequential smoother: %.2e (%s)\n" !worst
      (if !worst < 1e-9 then "OK" else "MISMATCH")
