(* A physical scenario: transient heat conduction in a 3D block, solved with
   the 7-point Jacobi relaxation the paper's §6.1 evaluates, z-partitioned
   over 8 simulated GPUs.

   This is the strong-scaling regime the paper argues CPU-Free execution is
   for: a fixed global domain whose per-GPU share shrinks as devices are
   added, until host-incurred latencies dominate the baselines.

     dune exec examples/heat3d.exe *)

module E = Cpufree_engine
module S = Cpufree_stencil
module Measure = Cpufree_core.Measure
module Time = E.Time

let dims = S.Problem.D3 { nx = 256; ny = 256; nz = 256 }
let iterations = 100

let () =
  Printf.printf "3D heat diffusion, %s global domain, %d Jacobi iterations\n"
    (S.Problem.dims_to_string dims) iterations;
  Printf.printf "\nStrong scaling (per-iteration time, us):\n";
  Printf.printf "%6s %18s %18s %12s\n" "gpus" "baseline-nvshmem" "cpu-free" "speedup";
  List.iter
    (fun gpus ->
      let problem = S.Problem.make dims ~iterations in
      let base = S.Harness.run_env S.Variants.Nvshmem problem ~gpus in
      let free = S.Harness.run_env S.Variants.Cpu_free problem ~gpus in
      Printf.printf "%6d %18.2f %18.2f %11.1f%%\n" gpus
        (Time.to_us_float base.Measure.per_iter)
        (Time.to_us_float free.Measure.per_iter)
        (Measure.speedup_pct ~baseline:base ~ours:free))
    [ 1; 2; 4; 8 ];

  (* The same comparison with computation disabled isolates what the paper
     calls "no compute" time: the pure communication/synchronization floor. *)
  Printf.printf "\nCommunication floor (no-compute, per-iteration, us):\n";
  Printf.printf "%6s %18s %18s\n" "gpus" "baseline-nvshmem" "cpu-free";
  List.iter
    (fun gpus ->
      let problem = S.Problem.make ~compute:false dims ~iterations in
      let base = S.Harness.run_env S.Variants.Nvshmem problem ~gpus in
      let free = S.Harness.run_env S.Variants.Cpu_free problem ~gpus in
      Printf.printf "%6d %18.2f %18.2f\n" gpus
        (Time.to_us_float base.Measure.per_iter)
        (Time.to_us_float free.Measure.per_iter))
    [ 2; 4; 8 ];

  (* Physics sanity on a small instance: after enough relaxation steps the
     interior temperature range shrinks (diffusion smooths the field), and
     the distributed result matches the sequential solver exactly. *)
  let small =
    S.Problem.make ~backed:true (S.Problem.D3 { nx = 12; ny = 12; nz = 24 }) ~iterations:8
  in
  match S.Harness.verify_env S.Variants.Cpu_free small ~gpus:4 with
  | Ok err ->
    Printf.printf "\nVerification of the distributed solve: OK (max |err| = %.1e)\n" err
  | Error m -> Printf.printf "\nVerification FAILED: %s\n" m
