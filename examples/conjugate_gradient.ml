(* Conjugate gradient, entirely CPU-Free.

   PERKS — whose persistent-kernel caching the paper builds on — evaluates
   stencils and conjugate gradient; this example shows the second workload
   class on our model. CG needs two things per iteration that a
   CPU-controlled runtime does with host round-trips:

   - a halo exchange for the sparse matvec (GPU-initiated put+signal here);
   - two global dot products (device-side allreduce here, built on
     fine-grained nvshmem_p + signal arithmetic — see Cpufree_comm.Collective).

   We solve the 1D Poisson system A x = b, A = tridiag(-1, 2, -1),
   partitioned over 4 simulated GPUs, inside one persistent kernel per
   device, and check the true residual at the end.

     dune exec examples/conjugate_gradient.exe *)

module E = Cpufree_engine
module G = Cpufree_gpu
module Nv = Cpufree_comm.Nvshmem
module Collective = Cpufree_comm.Collective
module Persistent = Cpufree_core.Persistent
module Time = E.Time

let gpus = 4
let n_global = 256
let iterations = n_global (* CG converges in at most n steps *)
let chunk = n_global / gpus

(* Deterministic right-hand side. *)
let b_value gi = sin (float_of_int (gi + 1) *. 0.37) +. 1.1

let () =
  let eng = E.Engine.create () in
  let ctx = G.Runtime.create eng ~num_gpus:gpus () in
  let nv = Nv.init ctx in
  let coll = Collective.create nv ~label:"cg" in
  let arch = G.Runtime.arch ctx in

  (* Distributed vectors with one halo cell per side: x, r, p, Ap. *)
  let vec label = Nv.sym_malloc nv ~label (chunk + 2) in
  let x = vec "x" and r = vec "r" and p = vec "p" and ap = vec "ap" in
  let halo_ready = Nv.signal_malloc nv ~label:"halo" () in

  (* Charge a memory-bound cost for a sweep over the local chunk. *)
  let sweep_cost ~arrays =
    G.Kernel.memory_bound_time arch ~elems:chunk
      ~bytes_per_elem:(float_of_int (arrays * G.Buffer.elem_bytes))
      ~sm_fraction:1.0 ~efficiency:1.0
  in

  let final_residual = Array.make gpus nan in

  let roles pe =
    let buf s = Nv.local s ~pe in
    let exchange_p ~iter =
      (* Push my edge p-values into the neighbours' halos, signal, wait. *)
      if pe > 0 then
        Nv.putmem_signal_nbi nv ~from_pe:pe ~to_pe:(pe - 1) ~src:(buf p) ~src_pos:1 ~dst:p
          ~dst_pos:(chunk + 1) ~len:1 ~sig_var:halo_ready ~sig_op:Nv.Signal_add ~sig_value:1;
      if pe < gpus - 1 then
        Nv.putmem_signal_nbi nv ~from_pe:pe ~to_pe:(pe + 1) ~src:(buf p) ~src_pos:chunk
          ~dst:p ~dst_pos:0 ~len:1 ~sig_var:halo_ready ~sig_op:Nv.Signal_add ~sig_value:1;
      let expected_per_iter = (if pe > 0 then 1 else 0) + if pe < gpus - 1 then 1 else 0 in
      Nv.signal_wait_ge nv ~pe ~sig_var:halo_ready (iter * expected_per_iter)
    in
    let solver _grid =
      (* x = 0; r = p = b. *)
      for i = 1 to chunk do
        let bi = b_value ((pe * chunk) + i - 1) in
        G.Buffer.set (buf x) i 0.0;
        G.Buffer.set (buf r) i bi;
        G.Buffer.set (buf p) i bi
      done;
      E.Engine.delay eng (sweep_cost ~arrays:3);
      let rr = ref (Collective.allreduce_sum coll ~pe
                      (let s = ref 0.0 in
                       for i = 1 to chunk do
                         s := !s +. (G.Buffer.get (buf r) i ** 2.0)
                       done;
                       !s))
      in
      let iter = ref 0 in
      while !iter < iterations && !rr > 1e-20 do
        incr iter;
        exchange_p ~iter:!iter;
        (* Ap = A p (3-point stencil matvec; halos are fresh). *)
        let local_pap = ref 0.0 in
        for i = 1 to chunk do
          let gi = (pe * chunk) + i - 1 in
          let left = if gi = 0 then 0.0 else G.Buffer.get (buf p) (i - 1) in
          let right = if gi = n_global - 1 then 0.0 else G.Buffer.get (buf p) (i + 1) in
          let v = (2.0 *. G.Buffer.get (buf p) i) -. left -. right in
          G.Buffer.set (buf ap) i v;
          local_pap := !local_pap +. (G.Buffer.get (buf p) i *. v)
        done;
        E.Engine.delay eng (sweep_cost ~arrays:3);
        let pap = Collective.allreduce_sum coll ~pe !local_pap in
        let alpha = !rr /. pap in
        (* x += alpha p; r -= alpha Ap. *)
        let local_rr = ref 0.0 in
        for i = 1 to chunk do
          G.Buffer.set (buf x) i (G.Buffer.get (buf x) i +. (alpha *. G.Buffer.get (buf p) i));
          let ri = G.Buffer.get (buf r) i -. (alpha *. G.Buffer.get (buf ap) i) in
          G.Buffer.set (buf r) i ri;
          local_rr := !local_rr +. (ri *. ri)
        done;
        E.Engine.delay eng (sweep_cost ~arrays:4);
        let rr_new = Collective.allreduce_sum coll ~pe !local_rr in
        let beta = rr_new /. !rr in
        for i = 1 to chunk do
          G.Buffer.set (buf p) i (G.Buffer.get (buf r) i +. (beta *. G.Buffer.get (buf p) i))
        done;
        E.Engine.delay eng (sweep_cost ~arrays:2);
        rr := rr_new
      done;
      final_residual.(pe) <- sqrt !rr
    in
    [ ("solver", solver) ]
  in

  let (_ : E.Engine.process) =
    E.Engine.spawn eng ~name:"host" (fun () ->
        Persistent.run_all ctx ~name:"cg" ~blocks:(Persistent.max_blocks ctx)
          ~threads_per_block:1024 ~roles)
  in
  E.Engine.run eng;

  Printf.printf "CPU-Free conjugate gradient: %d unknowns on %d simulated GPUs\n" n_global gpus;
  Printf.printf "simulated solve time: %s\n" (Time.to_string (E.Engine.now eng));
  Printf.printf "recurrence residual ||r||: %.3e\n" final_residual.(0);

  (* Check the TRUE residual of the assembled solution: ||b - A x||. *)
  let full_x = Array.make n_global 0.0 in
  for pe = 0 to gpus - 1 do
    let buf = Nv.local x ~pe in
    for i = 1 to chunk do
      full_x.((pe * chunk) + i - 1) <- G.Buffer.get buf i
    done
  done;
  let true_res = ref 0.0 in
  for gi = 0 to n_global - 1 do
    let left = if gi = 0 then 0.0 else full_x.(gi - 1) in
    let right = if gi = n_global - 1 then 0.0 else full_x.(gi + 1) in
    let axi = (2.0 *. full_x.(gi)) -. left -. right in
    true_res := !true_res +. ((b_value gi -. axi) ** 2.0)
  done;
  Printf.printf "true residual ||b - Ax||:  %.3e  (%s)\n" (sqrt !true_res)
    (if sqrt !true_res < 1e-6 then "converged" else "NOT converged")
